// The metric name catalog: every metric the BlindBox pipeline registers,
// with its help string. Packages register through these constants, and
// TestMetricNames pins the catalog — a metric outside it (or one that
// breaks the Prometheus name grammar) fails the build gate. DESIGN.md §8
// documents the same catalog for operators.

package obs

// Metric names, grouped by the subsystem that owns them. Conventions:
// every name is prefixed blindbox_<subsystem>_; counters end in _total;
// histograms end in their unit (_seconds, _bytes); vec metrics carry
// exactly one label, named in the help string.
const (
	// middlebox (label owners: sid on alerts_by_sid, shard on queue depth)
	MBConnectionsTotal   = "blindbox_mb_connections_total"
	MBConnErrorsTotal    = "blindbox_mb_conn_errors_total"
	MBTokensScannedTotal = "blindbox_mb_tokens_scanned_total"
	MBBytesForwarded     = "blindbox_mb_bytes_forwarded_total"
	MBAlertsTotal        = "blindbox_mb_alerts_total"
	MBBlockedTotal       = "blindbox_mb_blocked_total"
	MBKeysRecovered      = "blindbox_mb_keys_recovered_total"
	MBAlertsBySID        = "blindbox_mb_alerts_by_sid_total"
	MBShardQueueDepth    = "blindbox_mb_shard_queue_depth"
	MBScanSeconds        = "blindbox_mb_scan_seconds"
	MBBarrierWaitSeconds = "blindbox_mb_barrier_wait_seconds"
	MBHandshakeSeconds   = "blindbox_mb_handshake_seconds"
	MBPrepSeconds        = "blindbox_mb_prep_seconds"

	// middlebox fault-tolerance layer (label owners: step on timeouts,
	// op on retries)
	MBTimeoutsTotal        = "blindbox_mb_timeouts_total"
	MBRetriesTotal         = "blindbox_mb_retries_total"
	MBDegradedTotal        = "blindbox_mb_degraded_total"
	MBFailClosedDropsTotal = "blindbox_mb_failclosed_drops_total"
	MBUnscannedBytes       = "blindbox_mb_unscanned_bytes_total"

	// transport endpoints
	ConnHandshakeSeconds = "blindbox_conn_handshake_seconds"
	ConnRecordsTotal     = "blindbox_conn_records_total"
	ConnRecordBytes      = "blindbox_conn_record_bytes"
	ConnDialRetriesTotal = "blindbox_conn_dial_retries_total"

	// core sender pipeline
	SenderTokenizeSeconds = "blindbox_sender_tokenize_seconds"
	SenderEncryptSeconds  = "blindbox_sender_encrypt_seconds"

	// dpienc
	DPIEncTokensTotal = "blindbox_dpienc_tokens_encrypted_total"
	DPIEncResetsTotal = "blindbox_dpienc_counter_resets_total"

	// detect
	DetectTokensTotal = "blindbox_detect_tokens_total"
	DetectEventsTotal = "blindbox_detect_events_total"

	// baseline (plaintext IDS)
	BaselinePacketsTotal = "blindbox_baseline_packets_total"
	BaselineHitsTotal    = "blindbox_baseline_pattern_hits_total"

	// obs self-observability: the flight recorder / sampler watching itself
	// (label owners: decision on sampler decisions, disposition on flows)
	ObsSamplerDecisionsTotal = "blindbox_obs_sampler_decisions_total"
	ObsFlowsTotal            = "blindbox_obs_flows_total"
	ObsRingEvictionsTotal    = "blindbox_obs_ring_evictions_total"
	ObsSpansFlushedTotal     = "blindbox_obs_spans_flushed_total"
	ObsSpansDroppedTotal     = "blindbox_obs_spans_dropped_total"
	ObsRecordSeconds         = "blindbox_obs_record_seconds"

	// process identity (label owners: version on build info, worker on
	// worker info)
	BuildInfo  = "blindbox_build_info"
	WorkerInfo = "blindbox_worker_info"

	// fleet aggregation plane (internal/obs/agg + cmd/bbfleet; label
	// owners: worker on the scrape/health vecs, slo on the SLO vecs)
	FleetScrapesTotal      = "blindbox_fleet_scrapes_total"
	FleetScrapeErrorsTotal = "blindbox_fleet_scrape_errors_total"
	FleetScrapeSeconds     = "blindbox_fleet_scrape_seconds"
	FleetStalenessSeconds  = "blindbox_fleet_staleness_seconds"
	FleetWorkerUp          = "blindbox_fleet_worker_up"
	FleetSLOUp             = "blindbox_fleet_slo_up"
	FleetSLOBreachesTotal  = "blindbox_fleet_slo_breaches_total"
)

// Catalog maps every canonical metric name to its help string.
var Catalog = map[string]string{
	MBConnectionsTotal:   "Connections admitted by the middlebox (monotonic, process lifetime).",
	MBConnErrorsTotal:    "Connections that failed before forwarding began (upstream dial, handshake interposition or rule preparation).",
	MBTokensScannedTotal: "Encrypted tokens received for detection across all flows.",
	MBBytesForwarded:     "Data-record payload bytes forwarded through the middlebox.",
	MBAlertsTotal:        "Detection events dispatched (keyword, rule and secondary alerts).",
	MBBlockedTotal:       "Connections severed by a block-action rule match.",
	MBKeysRecovered:      "Protocol III SSL keys recovered under probable cause.",
	MBAlertsBySID:        "Rule alerts by rule SID; label: sid.",
	MBShardQueueDepth:    "Queued detection batches per shard; label: shard.",
	MBScanSeconds:        "Detection latency of one token batch (ScanBatch).",
	MBBarrierWaitSeconds: "Time the forwarding goroutine waited on the detection barrier before a data/close record.",
	MBHandshakeSeconds:   "Middlebox hello-interposition duration per connection.",
	MBPrepSeconds:        "Obfuscated rule encryption duration per connection (both legs).",

	MBTimeoutsTotal:        "Deadline expiries by blocking step; label: step (handshake, prep, idle, write, barrier).",
	MBRetriesTotal:         "Backoff retries performed by the middlebox; label: op (dial, prep).",
	MBDegradedTotal:        "Connections degraded to fail-open forwarding after detection became unavailable.",
	MBFailClosedDropsTotal: "Connections severed by the fail-closed policy after detection became unavailable.",
	MBUnscannedBytes:       "Data-record payload bytes forwarded without detection under fail-open degradation.",

	ConnHandshakeSeconds: "Endpoint handshake duration, including rule preparation when a middlebox is present.",
	ConnRecordsTotal:     "Records written by this endpoint after the handshake (salt, token, data and close records).",
	ConnRecordBytes:      "Body size of records written by this endpoint.",
	ConnDialRetriesTotal: "Dial attempts retried by endpoint Dial (connect plus handshake, as one unit).",

	SenderTokenizeSeconds: "Tokenization latency per processed chunk.",
	SenderEncryptSeconds:  "DPIEnc encryption latency per token batch (after counter assignment).",

	DPIEncTokensTotal: "Tokens encrypted by DPIEnc senders.",
	DPIEncResetsTotal: "Counter-table resets (explicit and interval-driven).",

	DetectTokensTotal: "Tokens processed by detection engines.",
	DetectEventsTotal: "Detection events (keyword and rule matches) produced by engines.",

	BaselinePacketsTotal: "Packets processed by the plaintext baseline IDS pipeline.",
	BaselineHitsTotal:    "Multi-pattern hits in the plaintext baseline IDS pipeline.",

	ObsSamplerDecisionsTotal: "Head-sampling decisions taken when a flow's flight recorder begins; label: decision (sampled, unsampled).",
	ObsFlowsTotal:            "Flows ended by the flight recorder by terminal disposition; label: disposition (head, tail, drop).",
	ObsRingEvictionsTotal:    "Spans overwritten in full flight-recorder rings (oldest-first eviction).",
	ObsSpansFlushedTotal:     "Spans delivered to the trace sink (head-sampled streaming plus tail flushes).",
	ObsSpansDroppedTotal:     "Spans discarded by the flight recorder (unsampled clean flows and post-flush stragglers).",
	ObsRecordSeconds:         "Flight-recorder record-path latency per span (ring append, lock included).",

	BuildInfo:  "Build identity gauge, always 1; label: version (Go version and VCS revision from debug.ReadBuildInfo).",
	WorkerInfo: "Worker identity gauge, always 1; label: worker (the operator-assigned worker name, e.g. bbmb -worker).",

	FleetScrapesTotal:      "Successful scrapes of a worker admin endpoint by the fleet aggregator; label: worker.",
	FleetScrapeErrorsTotal: "Failed scrape rounds per worker (after the retry budget was exhausted); label: worker.",
	FleetScrapeSeconds:     "Wall-clock duration of one worker scrape (fetch plus parse, successful attempts only).",
	FleetStalenessSeconds:  "Whole seconds since the last successful scrape of a worker; label: worker.",
	FleetWorkerUp:          "Worker health as seen by the fleet aggregator: 1 up, 0 stale, degraded or down; label: worker.",
	FleetSLOUp:             "Declared SLO status at last evaluation: 1 met, 0 breached; label: slo.",
	FleetSLOBreachesTotal:  "SLO evaluations that found the objective breached; label: slo.",
}

// Help returns the catalog help string for name ("" when uncataloged —
// TestMetricNames rejects registrations that hit that path).
func Help(name string) string { return Catalog[name] }
