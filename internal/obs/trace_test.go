package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// spanEqual compares spans by value, following the Shard pointer (plain
// == would compare pointer identity, which JSON round trips never keep).
func spanEqual(a, b Span) bool {
	as, bs := a.Shard, b.Shard
	a.Shard, b.Shard = nil, nil
	if a != b {
		return false
	}
	if (as == nil) != (bs == nil) {
		return false
	}
	return as == nil || *as == *bs
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	ctx := NewSpanCtx()
	child := ctx.Child()
	in := []Span{
		{Flow: 1, Dir: "c2s", Name: SpanScan, Shard: ShardID(2), Start: 100, Dur: 50, Tokens: 8},
		{Flow: 1, Name: SpanHandshake, Start: 10, Dur: 90},
		{Flow: 2, Dir: "s2c", Name: SpanForward, Start: 200, Dur: 1000, Bytes: 4096, Err: "reset"},
		{Flow: 3, Party: PartyClient, Name: SpanPrepGarble, Start: 5, Dur: 6, Gates: 6400, Rows: 12800, Bytes: 1 << 18},
	}
	child.Stamp(&in[3])
	for _, sp := range in {
		sink.Emit(sp)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != len(in) {
		t.Fatalf("JSONL lines = %d, want %d", n, len(in))
	}
	out, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("ReadSpans returned %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		if !spanEqual(out[i], in[i]) {
			t.Errorf("span %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
	if out[3].TraceID != ctx.Trace.String() || out[3].Parent != ctx.Span || out[3].SpanID != child.Span {
		t.Errorf("trace identity lost in round trip: %+v", out[3])
	}
}

func TestJSONLSinkOmitsEmptyFields(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sink.Emit(Span{Flow: 3, Name: SpanTokenize, Start: 1, Dur: 2})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	for _, absent := range []string{`"dir"`, `"shard"`, `"tokens"`, `"bytes"`, `"err"`, `"trace"`, `"id"`, `"parent"`, `"party"`, `"gates"`, `"rows"`} {
		if strings.Contains(line, absent) {
			t.Errorf("zero-valued field %s serialized: %s", absent, line)
		}
	}
}

// TestShardZeroSurvivesJSON is the regression test for the v1 schema bug:
// `json:"shard,omitempty"` dropped shard 0, making scans on shard 0
// indistinguishable from connection-level spans.
func TestShardZeroSurvivesJSON(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sink.Emit(Span{Flow: 1, Name: SpanScan, Shard: ShardID(0), Start: 1, Dur: 2})
	sink.Emit(Span{Flow: 1, Name: SpanScan, Shard: ShardID(-1), Start: 3, Dur: 4})
	sink.Emit(Span{Flow: 1, Name: SpanHandshake, Start: 5, Dur: 6})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.Contains(lines[0], `"shard":0`) {
		t.Errorf("shard 0 dropped from scan span: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"shard":-1`) {
		t.Errorf("inline-scan shard -1 dropped: %s", lines[1])
	}
	out, err := ReadSpans(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Shard == nil || *out[0].Shard != 0 {
		t.Errorf("parsed shard = %v, want 0", out[0].Shard)
	}
	if out[2].Shard != nil {
		t.Errorf("connection-level span grew a shard: %v", *out[2].Shard)
	}
}

func TestSpanCtx(t *testing.T) {
	root := NewSpanCtx()
	if !root.Valid() || root.Parent != 0 || root.Span == 0 {
		t.Fatalf("bad root ctx: %+v", root)
	}
	child := root.Child()
	if child.Trace != root.Trace || child.Parent != root.Span || child.Span == root.Span || child.Span == 0 {
		t.Fatalf("bad child ctx: root %+v child %+v", root, child)
	}
	var sp Span
	child.Stamp(&sp)
	if sp.TraceID != root.Trace.String() || sp.SpanID != child.Span || sp.Parent != root.Span {
		t.Fatalf("bad stamp: %+v", sp)
	}
	parsed, err := ParseTraceID(sp.TraceID)
	if err != nil || parsed != root.Trace {
		t.Fatalf("ParseTraceID(%q) = %v, %v", sp.TraceID, parsed, err)
	}
	if _, err := ParseTraceID("zz"); err == nil {
		t.Fatal("ParseTraceID accepted a short non-hex string")
	}

	var zero SpanCtx
	if zero.Valid() || zero.Child().Valid() {
		t.Fatal("zero ctx claims validity")
	}
	var untouched Span
	zero.Stamp(&untouched)
	if untouched.TraceID != "" || untouched.SpanID != 0 {
		t.Fatalf("zero ctx stamped a span: %+v", untouched)
	}
}

func TestNewSpanIDUnique(t *testing.T) {
	seen := make(map[uint64]bool, 1000)
	for i := 0; i < 1000; i++ {
		id := NewSpanID()
		if id == 0 || seen[id] {
			t.Fatalf("span ID %d repeated or zero at iteration %d", id, i)
		}
		seen[id] = true
	}
}

// TestJSONLSinkEmitFlushCloseRace interleaves Emit, Flush and Close from
// many goroutines — the -race contract of the sink, mirroring a shutdown
// where detection shards still emit while the signal handler closes.
func TestJSONLSinkEmitFlushCloseRace(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex // buf itself is not concurrency-safe
	sink := NewJSONLSink(lockedWriter{&mu, &buf})

	const writers, spans = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < spans; i++ {
				sink.Emit(Span{Flow: uint64(w), Name: SpanScan, Shard: ShardID(w), Start: int64(i), Dur: 1})
				if i%50 == 0 {
					//lint:ignore unchecked-err concurrent Flush during the race test only exercises locking
					sink.Flush()
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		//lint:ignore unchecked-err concurrent Close during the race test only exercises locking
		sink.Close()
	}()
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatalf("idempotent Close: %v", err)
	}
	// Post-close emits are dropped, not written.
	before := buf.Len()
	sink.Emit(Span{Flow: 99, Name: SpanScan, Start: 1, Dur: 1})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != before {
		t.Fatal("Emit after Close wrote data")
	}
	// Whatever made it out must be whole JSONL lines.
	if _, err := ReadSpans(&buf); err != nil {
		t.Fatalf("post-race stream corrupt: %v", err)
	}
}

// lockedWriter serializes writes so the test's bytes.Buffer is safe under
// the sink's internal concurrency.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

// Write implements io.Writer under the shared lock.
func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestCollectSinkConcurrent(t *testing.T) {
	var sink CollectSink
	const writers, spans = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < spans; i++ {
				sink.Emit(Span{Flow: uint64(w), Name: SpanScan, Start: int64(i)})
			}
		}(w)
	}
	wg.Wait()
	got := sink.Spans()
	if len(got) != writers*spans {
		t.Fatalf("collected %d spans, want %d", len(got), writers*spans)
	}
	// Per-flow emission order must be preserved (spans from one goroutine
	// keep their relative order).
	last := make(map[uint64]int64)
	for _, sp := range got {
		if prev, ok := last[sp.Flow]; ok && sp.Start < prev {
			t.Fatalf("flow %d span order regressed: %d after %d", sp.Flow, sp.Start, prev)
		}
		last[sp.Flow] = sp.Start
	}
}
