package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	in := []Span{
		{Flow: 1, Dir: "c2s", Name: SpanScan, Shard: 2, Start: 100, Dur: 50, Tokens: 8},
		{Flow: 1, Name: SpanHandshake, Start: 10, Dur: 90},
		{Flow: 2, Dir: "s2c", Name: SpanForward, Start: 200, Dur: 1000, Bytes: 4096, Err: "reset"},
	}
	for _, sp := range in {
		sink.Emit(sp)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != len(in) {
		t.Fatalf("JSONL lines = %d, want %d", n, len(in))
	}
	out, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("ReadSpans returned %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("span %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestJSONLSinkOmitsEmptyFields(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sink.Emit(Span{Flow: 3, Name: SpanTokenize, Start: 1, Dur: 2})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	for _, absent := range []string{`"dir"`, `"shard"`, `"tokens"`, `"bytes"`, `"err"`} {
		if strings.Contains(line, absent) {
			t.Errorf("zero-valued field %s serialized: %s", absent, line)
		}
	}
}

func TestCollectSinkConcurrent(t *testing.T) {
	var sink CollectSink
	const writers, spans = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < spans; i++ {
				sink.Emit(Span{Flow: uint64(w), Name: SpanScan, Start: int64(i)})
			}
		}(w)
	}
	wg.Wait()
	got := sink.Spans()
	if len(got) != writers*spans {
		t.Fatalf("collected %d spans, want %d", len(got), writers*spans)
	}
	// Per-flow emission order must be preserved (spans from one goroutine
	// keep their relative order).
	last := make(map[uint64]int64)
	for _, sp := range got {
		if prev, ok := last[sp.Flow]; ok && sp.Start < prev {
			t.Fatalf("flow %d span order regressed: %d after %d", sp.Flow, sp.Start, prev)
		}
		last[sp.Flow] = sp.Start
	}
}
