// The per-flow flight recorder and trace sampler: always-on, bounded-cost
// observability for millions of flows (DESIGN.md §8).
//
// Unconditional span emission does not survive production scale — the
// JSONL encoder becomes the hot path and the interesting 0.1% of flows
// drown in the boring 99.9%. The recorder inverts the cost model: every
// live flow records its spans and key lifecycle events into a fixed-size,
// pooled ring buffer (zero steady-state allocations), and spans only reach
// the real sink for flows that matter:
//
//   - head sampling: a deterministic hash of the 128-bit trace ID against
//     a configured rate picks flows up front; their spans stream to the
//     sink as they happen, labeled Sampled="head". The decision is a pure
//     function of (trace ID, rate), so every party that knows the trace ID
//     reaches the same verdict — and it additionally rides the hello
//     extension (transport.AppendHelloSampled) so parties agree even when
//     their configured rates differ.
//   - tail retention: when a flow ends in an interesting terminal state
//     (alert fired, step timeout, fail-open degradation, netem fault,
//     block, conn error) its full ring is flushed, labeled Sampled="tail",
//     regardless of the head decision. Otherwise the ring is dropped.
//
// The recorder watches itself through the blindbox_obs_* metric family and
// exposes /debug/flows + /debug/flightrecorder (see admin.go).

package obs

import (
	"math"
	"sync"
	"time"
)

// Defaults for RecorderConfig's zero fields.
const (
	// DefaultRecorderEvents is the per-flow ring capacity in spans. At
	// roughly 200 B per Span the worst-case ring is ~50 KiB, pooled and
	// reused across flows, so resident cost scales with *live* flows only.
	DefaultRecorderEvents = 256
	// DefaultRecentFlows is the capacity of the recent-flow table served
	// on /debug/flows.
	DefaultRecentFlows = 64
)

// Disposition classifies how a flow's recorded spans left the recorder.
type Disposition string

// The flow dispositions. Live appears only in /debug/flows snapshots; the
// other three are terminal and counted in blindbox_obs_flows_total.
const (
	// DispositionLive marks a flow still recording.
	DispositionLive Disposition = "live"
	// DispositionHead marks a head-sampled flow: spans streamed to the
	// sink as they were recorded.
	DispositionHead Disposition = "head"
	// DispositionTail marks an unsampled flow flushed at end-of-flow
	// because it terminated in an interesting state.
	DispositionTail Disposition = "tail"
	// DispositionDrop marks an unsampled, uninteresting flow whose ring
	// was discarded.
	DispositionDrop Disposition = "drop"
)

// Sampler is the deterministic head-sampling decision: a pure function of
// the trace ID and the configured rate, so all parties of a flow agree
// without coordination. The zero value samples nothing.
type Sampler struct {
	threshold uint64
	all       bool
}

// NewSampler builds a sampler that admits approximately rate of trace IDs
// (clamped to [0, 1]; 0 admits none, 1 admits all).
func NewSampler(rate float64) Sampler {
	switch {
	case rate <= 0 || math.IsNaN(rate):
		return Sampler{}
	case rate >= 1:
		return Sampler{threshold: math.MaxUint64, all: true}
	}
	t := rate * 0x1p64
	if t >= 0x1p64 {
		return Sampler{threshold: math.MaxUint64, all: true}
	}
	return Sampler{threshold: uint64(t)}
}

// Sample reports the head decision for one trace ID.
func (s Sampler) Sample(t TraceID) bool {
	return s.all || sampleHash(t) < s.threshold
}

// sampleHash maps a trace ID to a uniform uint64: FNV-1a over the 16 ID
// bytes, then a splitmix64 finisher so the threshold comparison sees
// avalanche-quality high bits even for structured IDs.
func sampleHash(t TraceID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range t {
		h ^= uint64(b)
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// RecorderConfig configures a Recorder. The zero value is usable: default
// ring and table sizes, sampling rate 0 (tail-only retention), no sink, no
// self-metrics.
type RecorderConfig struct {
	// Events is the per-flow ring capacity in spans (default
	// DefaultRecorderEvents). A flow recording more than Events spans
	// evicts oldest-first; evictions are counted.
	Events int
	// Sample is the head-sampling rate in [0, 1].
	Sample float64
	// Recent is the recent-flow table capacity (default
	// DefaultRecentFlows).
	Recent int
	// Sink receives streamed (head) and flushed (tail) spans. Nil records
	// and classifies flows but delivers nothing — useful for /debug-only
	// deployments.
	Sink Sink
	// Metrics receives the blindbox_obs_* self-metrics; nil disables them
	// at the usual nil-handle zero cost.
	Metrics *Registry
}

// Recorder manages the per-flow flight recorders of one process: a pool of
// span rings, the live-flow table, the recent-flow table, and the sampler.
// All methods are safe for concurrent use; a nil *Recorder is the
// documented disabled state (BeginFlow returns a nil *FlowRecorder, whose
// methods are no-ops).
type Recorder struct {
	events  int
	sampler Sampler
	sink    Sink

	rings sync.Pool // *ringBuf

	mu      sync.Mutex
	live    map[uint64]*FlowRecorder
	recent  []FlowSummary // ring; recentN is the next write slot
	recentN int

	// Pre-resolved metric children so the per-flow paths never touch the
	// vec maps.
	decSampled   *Counter
	decUnsampled *Counter
	flowsHead    *Counter
	flowsTail    *Counter
	flowsDrop    *Counter
	evictions    *Counter
	flushed      *Counter
	dropped      *Counter
	recordNs     *Histogram
}

// ringBuf is one pooled span ring. It is a named struct (not a bare slice)
// so sync.Pool round-trips a pointer without boxing a slice header.
type ringBuf struct {
	buf []Span
}

// NewRecorder builds a Recorder from cfg.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Events <= 0 {
		cfg.Events = DefaultRecorderEvents
	}
	if cfg.Recent <= 0 {
		cfg.Recent = DefaultRecentFlows
	}
	r := &Recorder{
		events:  cfg.Events,
		sampler: NewSampler(cfg.Sample),
		sink:    cfg.Sink,
		live:    make(map[uint64]*FlowRecorder),
		recent:  make([]FlowSummary, 0, cfg.Recent),
	}
	r.rings.New = func() any { return &ringBuf{buf: make([]Span, cfg.Events)} }
	if m := cfg.Metrics; m != nil {
		decisions := m.CounterVec(ObsSamplerDecisionsTotal, Help(ObsSamplerDecisionsTotal), "decision")
		flows := m.CounterVec(ObsFlowsTotal, Help(ObsFlowsTotal), "disposition")
		r.decSampled = decisions.With("sampled")
		r.decUnsampled = decisions.With("unsampled")
		r.flowsHead = flows.With(string(DispositionHead))
		r.flowsTail = flows.With(string(DispositionTail))
		r.flowsDrop = flows.With(string(DispositionDrop))
		r.evictions = m.Counter(ObsRingEvictionsTotal, Help(ObsRingEvictionsTotal))
		r.flushed = m.Counter(ObsSpansFlushedTotal, Help(ObsSpansFlushedTotal))
		r.dropped = m.Counter(ObsSpansDroppedTotal, Help(ObsSpansDroppedTotal))
		r.recordNs = m.Histogram(ObsRecordSeconds, Help(ObsRecordSeconds), LatencyBuckets)
	}
	return r
}

// Decide returns the head-sampling decision for a trace ID — the value a
// party roots into the hello sampling extension. False on a nil Recorder.
func (r *Recorder) Decide(t TraceID) bool {
	if r == nil {
		return false
	}
	return r.sampler.Sample(t)
}

// BeginFlow starts recording one flow under r's own head decision for
// ctx's trace ID. Parties that received a wire decision use
// BeginFlowSampled instead.
func (r *Recorder) BeginFlow(flow uint64, party string, ctx SpanCtx) *FlowRecorder {
	return r.BeginFlowSampled(flow, party, ctx, r.Decide(ctx.Trace))
}

// BeginFlowSampled starts recording one flow with an explicit head
// decision (adopted from the hello sampling extension, so all parties
// agree). Nil Recorder returns nil — every FlowRecorder method is
// nil-safe, so call sites need no guards.
func (r *Recorder) BeginFlowSampled(flow uint64, party string, ctx SpanCtx, head bool) *FlowRecorder {
	if r == nil {
		return nil
	}
	if head {
		r.decSampled.Inc()
	} else {
		r.decUnsampled.Inc()
	}
	f := &FlowRecorder{
		rec:      r,
		flow:     flow,
		party:    party,
		ctx:      ctx,
		traceStr: ctx.TraceString(),
		head:     head,
		start:    time.Now(),
		ring:     r.rings.Get().(*ringBuf),
	}
	r.mu.Lock()
	r.live[flow] = f
	r.mu.Unlock()
	return f
}

// lookup returns the live flow recorder for flow, nil when unknown.
func (r *Recorder) lookup(flow uint64) *FlowRecorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.live[flow]
}

// finish retires f from the live table and records its summary.
func (r *Recorder) finish(f *FlowRecorder, s FlowSummary) {
	r.mu.Lock()
	if r.live[f.flow] == f {
		delete(r.live, f.flow)
	}
	if len(r.recent) < cap(r.recent) {
		r.recent = append(r.recent, s)
	} else {
		r.recent[r.recentN] = s
	}
	r.recentN = (r.recentN + 1) % cap(r.recent)
	r.mu.Unlock()
	switch s.Disposition {
	case DispositionHead:
		r.flowsHead.Inc()
	case DispositionTail:
		r.flowsTail.Inc()
	default:
		r.flowsDrop.Inc()
	}
}

// Live snapshots the currently-recording flows, newest first.
func (r *Recorder) Live() []FlowSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	frs := make([]*FlowRecorder, 0, len(r.live))
	for _, f := range r.live {
		frs = append(frs, f)
	}
	r.mu.Unlock()
	out := make([]FlowSummary, 0, len(frs))
	for _, f := range frs {
		out = append(out, f.summary(DispositionLive, ""))
	}
	sortSummaries(out)
	return out
}

// liveFlows snapshots the live-flow table under the lock; per-flow ring
// copies happen outside it so a slow dump never stalls BeginFlow/End.
func (r *Recorder) liveFlows() []*FlowRecorder {
	r.mu.Lock()
	frs := make([]*FlowRecorder, 0, len(r.live))
	for _, f := range r.live {
		frs = append(frs, f)
	}
	r.mu.Unlock()
	return frs
}

// LiveSpans copies the current ring contents of every live flow, trace IDs
// stamped — the /debug/spans pull feed. Ended flows have returned their
// rings to the pool and do not appear; pulling a trace therefore only
// works while its flows are live (head/tail delivery to a Sink covers the
// rest). Nil on a nil receiver.
func (r *Recorder) LiveSpans() []Span {
	if r == nil {
		return nil
	}
	var out []Span
	for _, f := range r.liveFlows() {
		out = append(out, f.Snapshot()...)
	}
	return out
}

// SpansForTrace copies the ring contents of every live flow recording
// under the 32-hex trace ID — the /debug/trace?id= pull feed, and what
// the fleet aggregator assembles across workers. Nil when no live flow
// matches (or on a nil receiver).
func (r *Recorder) SpansForTrace(trace string) []Span {
	if r == nil || trace == "" {
		return nil
	}
	var out []Span
	for _, f := range r.liveFlows() {
		if f.traceStr != trace {
			continue
		}
		out = append(out, f.Snapshot()...)
	}
	return out
}

// Recent snapshots the ended-flow table, newest first.
func (r *Recorder) Recent() []FlowSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]FlowSummary(nil), r.recent...)
	r.mu.Unlock()
	sortSummaries(out)
	return out
}

// sortSummaries orders newest-start first, flow ID as tie-break.
func sortSummaries(s []FlowSummary) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && later(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// later reports whether a started after b (flow ID breaking ties).
func later(a, b FlowSummary) bool {
	if a.StartUnixNs != b.StartUnixNs {
		return a.StartUnixNs > b.StartUnixNs
	}
	return a.Flow > b.Flow
}

// FlowSummary is one row of the /debug/flows table.
type FlowSummary struct {
	// Flow is the party-local flow/connection ID.
	Flow uint64 `json:"flow"`
	// Trace is the 32-hex trace ID ("" when tracing was not negotiated).
	Trace string `json:"trace,omitempty"`
	// Party is the recording party ("client", "server", "mb").
	Party string `json:"party,omitempty"`
	// HeadSampled is the deterministic head-sampling decision.
	HeadSampled bool `json:"head_sampled"`
	// Disposition is "live" while recording, else the terminal
	// head/tail/drop classification.
	Disposition Disposition `json:"disposition"`
	// Reason explains an interesting flow (first terminal hint: alert,
	// timeout, degradation, fault, error).
	Reason string `json:"reason,omitempty"`
	// StartUnixNs is the flow's recording start time.
	StartUnixNs int64 `json:"start_unix_ns"`
	// DurNs is the recording duration (so-far for live flows).
	DurNs int64 `json:"dur_ns"`
	// Spans counts spans recorded over the flow's lifetime; Evicted counts
	// those overwritten by ring wraparound.
	Spans   uint64 `json:"spans"`
	Evicted uint64 `json:"evicted,omitempty"`
}

// FlowRecorder is one flow's flight recorder: a Sink whose Emit appends to
// the pooled ring (and streams to the real sink when the flow is
// head-sampled). All methods are safe for concurrent use and on a nil
// receiver; Emits after End are counted as dropped stragglers.
type FlowRecorder struct {
	rec      *Recorder
	flow     uint64
	party    string
	ctx      SpanCtx
	traceStr string
	head     bool
	start    time.Time

	mu          sync.Mutex
	ring        *ringBuf
	n           int    // valid spans in ring (<= len(ring.buf))
	next        int    // next write slot
	total       uint64 // spans recorded over the flow lifetime
	evicted     uint64
	interesting bool
	reason      string
	closed      bool
	done        Disposition
}

// Head reports the flow's head-sampling decision (false on nil).
func (f *FlowRecorder) Head() bool { return f != nil && f.head }

// Context returns the flow's span context (zero on nil).
func (f *FlowRecorder) Context() SpanCtx {
	if f == nil {
		return SpanCtx{}
	}
	return f.ctx
}

// Emit implements Sink: it records sp into the flow's ring and, when the
// flow is head-sampled, streams it to the real sink immediately. A span
// carrying an error marks the flow interesting (tail retention).
//
//bb:hotpath
func (f *FlowRecorder) Emit(sp Span) {
	if f == nil {
		return
	}
	f.record(sp, sp.Err != "", sp.Err)
}

// Event records a key lifecycle incident (retry, timeout, degradation,
// fault, alert, block — the SpanEvent* names) as a zero-duration span
// parented under the flow's connection context. Every event except a
// survivable retry marks the flow interesting, so its ring tail-flushes.
func (f *FlowRecorder) Event(name, dir, detail string) {
	if f == nil {
		return
	}
	sp := Span{
		Flow: f.flow, Party: f.party, Dir: dir, Name: name,
		Start: time.Now().UnixNano(), Err: detail,
	}
	if f.ctx.Valid() {
		sp.SpanID = NewSpanID()
		sp.Parent = f.ctx.Span
	}
	f.record(sp, name != SpanEventRetry, name)
}

// record is the shared append path of Emit and Event. It must stay free of
// per-span heap allocations: the ring slot assignment is a struct copy,
// the trace stamp is a cached string header, and the streamed copy goes to
// the sink by value.
//
//bb:hotpath
func (f *FlowRecorder) record(sp Span, interesting bool, reason string) {
	t0 := time.Now()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		f.rec.dropped.Inc()
		return
	}
	if interesting && !f.interesting {
		f.interesting = true
		f.reason = reason
	}
	buf := f.ring.buf
	if f.n == len(buf) {
		f.evicted++
		f.rec.evictions.Inc()
	} else {
		f.n++
	}
	buf[f.next] = sp
	f.next++
	if f.next == len(buf) {
		f.next = 0
	}
	f.total++
	stream := f.head && f.rec.sink != nil
	f.mu.Unlock()
	if stream {
		if sp.TraceID == "" {
			sp.TraceID = f.traceStr
		}
		sp.Sampled = string(DispositionHead)
		f.rec.sink.Emit(sp)
		f.rec.flushed.Inc()
	}
	f.rec.recordNs.Observe(time.Since(t0).Seconds())
}

// Interesting marks the flow for tail retention without recording a span
// (for terminal states observed outside span emission).
func (f *FlowRecorder) Interesting(reason string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if !f.closed && !f.interesting {
		f.interesting = true
		f.reason = reason
	}
	f.mu.Unlock()
}

// Snapshot copies the flow's current ring contents in record order, trace
// IDs stamped — the /debug/flightrecorder dump. Nil on a nil receiver.
func (f *FlowRecorder) Snapshot() []Span {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ring == nil {
		return nil
	}
	out := make([]Span, 0, f.n)
	buf := f.ring.buf
	first := (f.next - f.n + len(buf)) % len(buf)
	for i := 0; i < f.n; i++ {
		sp := buf[(first+i)%len(buf)]
		if sp.TraceID == "" {
			sp.TraceID = f.traceStr
		}
		out = append(out, sp)
	}
	return out
}

// End closes the flow and settles its disposition: head-sampled flows have
// already streamed (the ring is discarded), interesting flows — a
// non-empty errMsg counts — tail-flush their ring to the sink, and the
// rest drop. The ring returns to the pool either way; stragglers emitting
// after End are dropped. End is idempotent and returns the disposition.
func (f *FlowRecorder) End(errMsg string) Disposition {
	if f == nil {
		return DispositionDrop
	}
	f.mu.Lock()
	if f.closed {
		d := f.done
		f.mu.Unlock()
		return d
	}
	f.closed = true
	if errMsg != "" && !f.interesting {
		f.interesting = true
		f.reason = errMsg
	}
	var d Disposition
	switch {
	case f.head:
		d = DispositionHead
	case f.interesting:
		d = DispositionTail
	default:
		d = DispositionDrop
	}
	f.done = d
	ring, n, next := f.ring, f.n, f.next
	f.ring = nil
	f.mu.Unlock()

	flush := d == DispositionTail && f.rec.sink != nil
	buf := ring.buf
	first := (next - n + len(buf)) % len(buf)
	for i := 0; i < n; i++ {
		slot := &buf[(first+i)%len(buf)]
		if flush {
			sp := *slot
			if sp.TraceID == "" {
				sp.TraceID = f.traceStr
			}
			sp.Sampled = string(DispositionTail)
			f.rec.sink.Emit(sp)
		}
		*slot = Span{} // release retained strings before pooling
	}
	switch {
	case flush:
		f.rec.flushed.Add(uint64(n))
	case d != DispositionHead:
		// Head flows streamed their spans already; anything else that did
		// not flush was discarded.
		f.rec.dropped.Add(uint64(n))
	}
	f.rec.rings.Put(ring)
	f.rec.finish(f, f.summary(d, errMsg))
	return d
}

// summary builds the flow's /debug table row.
func (f *FlowRecorder) summary(d Disposition, errMsg string) FlowSummary {
	f.mu.Lock()
	defer f.mu.Unlock()
	reason := f.reason
	if reason == "" {
		reason = errMsg
	}
	return FlowSummary{
		Flow:        f.flow,
		Trace:       f.traceStr,
		Party:       f.party,
		HeadSampled: f.head,
		Disposition: d,
		Reason:      reason,
		StartUnixNs: f.start.UnixNano(),
		DurNs:       int64(time.Since(f.start)),
		Spans:       f.total,
		Evicted:     f.evicted,
	}
}
