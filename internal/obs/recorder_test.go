package obs

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func testTraceID(n uint64) TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[8:], n)
	return t
}

func TestSamplerRateBounds(t *testing.T) {
	none := NewSampler(0)
	all := NewSampler(1)
	half := NewSampler(0.5)
	admitted := 0
	const ids = 4096
	for i := uint64(0); i < ids; i++ {
		id := testTraceID(i)
		if none.Sample(id) {
			t.Fatalf("rate 0 admitted %v", id)
		}
		if !all.Sample(id) {
			t.Fatalf("rate 1 rejected %v", id)
		}
		if half.Sample(id) != half.Sample(id) {
			t.Fatalf("nondeterministic decision for %v", id)
		}
		if half.Sample(id) {
			admitted++
		}
	}
	// The hash is avalanche-quality, so 0.5 should land well inside
	// [0.4, 0.6] over 4096 structured IDs.
	if frac := float64(admitted) / ids; frac < 0.4 || frac > 0.6 {
		t.Errorf("rate 0.5 admitted %.3f of IDs", frac)
	}
	// Degenerate rates behave like the nearest bound.
	if NewSampler(math.NaN()).Sample(testTraceID(1)) {
		t.Error("NaN rate admitted")
	}
	if !NewSampler(2).Sample(testTraceID(1)) {
		t.Error("rate 2 rejected")
	}
}

// FuzzSamplerDecision checks the invariants every party relies on: the
// decision is a pure function of (ID, rate), rate 0 admits nothing, rate 1
// admits everything, and raising the rate never turns an admitted ID away
// (monotonicity — the property that makes mixed-rate fleets safe).
func FuzzSamplerDecision(f *testing.F) {
	f.Add([]byte("0123456789abcdef"), 0.5, 0.9)
	f.Add([]byte(""), 0.0, 1.0)
	f.Add([]byte{0xff}, 0.01, 0.011)
	f.Fuzz(func(t *testing.T, raw []byte, r1, r2 float64) {
		var id TraceID
		copy(id[:], raw)
		if NewSampler(0).Sample(id) {
			t.Fatal("rate 0 admitted")
		}
		if !NewSampler(1).Sample(id) {
			t.Fatal("rate 1 rejected")
		}
		s1 := NewSampler(r1)
		if s1.Sample(id) != s1.Sample(id) {
			t.Fatal("nondeterministic")
		}
		if r1 <= r2 && s1.Sample(id) && !NewSampler(r2).Sample(id) {
			t.Fatalf("monotonicity violated: admitted at %v, rejected at %v", r1, r2)
		}
	})
}

func TestRecorderTailFlushOnInterestingEnd(t *testing.T) {
	sink := &CollectSink{}
	reg := NewRegistry()
	rec := NewRecorder(RecorderConfig{Sample: 0, Sink: sink, Metrics: reg})
	ctx := NewSpanCtx()
	fr := rec.BeginFlow(7, PartyMB, ctx)
	if fr.Head() {
		t.Fatal("rate 0 flow head-sampled")
	}
	sp := Span{Flow: 7, Party: PartyMB, Name: SpanScan, Tokens: 8}
	ctx.Child().Stamp(&sp)
	fr.Emit(sp)
	if got := sink.Spans(); len(got) != 0 {
		t.Fatalf("unsampled flow streamed %d span(s) before end", len(got))
	}
	fr.Event(SpanEventAlert, "c2s", "sid 42")
	if d := fr.End(""); d != DispositionTail {
		t.Fatalf("disposition = %v, want tail", d)
	}
	got := sink.Spans()
	if len(got) != 2 {
		t.Fatalf("flushed %d span(s), want 2", len(got))
	}
	for _, sp := range got {
		if sp.Sampled != string(DispositionTail) {
			t.Errorf("span %s labeled %q, want tail", sp.Name, sp.Sampled)
		}
		if sp.TraceID != ctx.TraceString() {
			t.Errorf("span %s trace %q, want %q", sp.Name, sp.TraceID, ctx.TraceString())
		}
	}
	if got[1].Name != SpanEventAlert || got[1].Err != "sid 42" {
		t.Errorf("event span = %+v", got[1])
	}
	if v := reg.Counter(ObsSpansFlushedTotal, "").Value(); v != 2 {
		t.Errorf("flushed counter = %d, want 2", v)
	}
	if v := reg.CounterVec(ObsFlowsTotal, "", "disposition").With(string(DispositionTail)).Value(); v != 1 {
		t.Errorf("tail flows counter = %d, want 1", v)
	}
}

func TestRecorderHeadStreamsWithoutDuplicateFlush(t *testing.T) {
	sink := &CollectSink{}
	rec := NewRecorder(RecorderConfig{Sample: 1, Sink: sink})
	ctx := NewSpanCtx()
	fr := rec.BeginFlow(1, PartyClient, ctx)
	if !fr.Head() {
		t.Fatal("rate 1 flow not head-sampled")
	}
	for i := 0; i < 3; i++ {
		sp := Span{Flow: 1, Party: PartyClient, Name: SpanEncrypt}
		ctx.Child().Stamp(&sp)
		fr.Emit(sp)
	}
	if got := sink.Spans(); len(got) != 3 {
		t.Fatalf("streamed %d span(s), want 3", len(got))
	}
	// Even an interesting end must not re-flush what already streamed.
	fr.Event(SpanEventAlert, "c2s", "sid 1")
	if d := fr.End("boom"); d != DispositionHead {
		t.Fatalf("disposition = %v, want head", d)
	}
	got := sink.Spans()
	if len(got) != 4 {
		t.Fatalf("sink has %d span(s) after end, want 4 (no duplicate flush)", len(got))
	}
	for _, sp := range got {
		if sp.Sampled != string(DispositionHead) {
			t.Errorf("span %s labeled %q, want head", sp.Name, sp.Sampled)
		}
	}
}

func TestRecorderDropsBoringFlows(t *testing.T) {
	sink := &CollectSink{}
	reg := NewRegistry()
	rec := NewRecorder(RecorderConfig{Sample: 0, Sink: sink, Metrics: reg})
	fr := rec.BeginFlow(2, PartyServer, NewSpanCtx())
	fr.Emit(Span{Flow: 2, Name: SpanTokenize})
	// A survivable retry is the one event that does not mark the flow
	// interesting on its own.
	fr.Event(SpanEventRetry, "server", "prep")
	if d := fr.End(""); d != DispositionDrop {
		t.Fatalf("disposition = %v, want drop", d)
	}
	if got := sink.Spans(); len(got) != 0 {
		t.Fatalf("dropped flow reached the sink with %d span(s)", len(got))
	}
	if v := reg.Counter(ObsSpansDroppedTotal, "").Value(); v != 2 {
		t.Errorf("dropped counter = %d, want 2", v)
	}
}

func TestRecorderErrorEndAndSpanErrAreInteresting(t *testing.T) {
	for name, drive := range map[string]func(fr *FlowRecorder) Disposition{
		"end error": func(fr *FlowRecorder) Disposition { return fr.End("conn reset") },
		"span error": func(fr *FlowRecorder) Disposition {
			fr.Emit(Span{Name: SpanForward, Err: "broken pipe"})
			return fr.End("")
		},
		"interesting": func(fr *FlowRecorder) Disposition { fr.Interesting("manual"); return fr.End("") },
		"fault event": func(fr *FlowRecorder) Disposition { fr.Event(SpanEventFault, "client", "reset@c2s"); return fr.End("") },
		"timeout":     func(fr *FlowRecorder) Disposition { fr.Event(SpanEventTimeout, "c2s", "barrier"); return fr.End("") },
		"degradation": func(fr *FlowRecorder) Disposition { fr.Event(SpanEventDegraded, "c2s", "fail-open"); return fr.End("") },
		"block":       func(fr *FlowRecorder) Disposition { fr.Event(SpanEventBlocked, "c2s", "sid 9"); return fr.End("") },
	} {
		rec := NewRecorder(RecorderConfig{Sample: 0, Sink: &CollectSink{}})
		fr := rec.BeginFlow(3, PartyMB, NewSpanCtx())
		if d := drive(fr); d != DispositionTail {
			t.Errorf("%s: disposition = %v, want tail", name, d)
		}
	}
}

func TestRecorderRingEviction(t *testing.T) {
	reg := NewRegistry()
	sink := &CollectSink{}
	rec := NewRecorder(RecorderConfig{Events: 4, Sample: 0, Sink: sink, Metrics: reg})
	fr := rec.BeginFlow(5, PartyMB, NewSpanCtx())
	for i := 0; i < 10; i++ {
		fr.Emit(Span{Flow: 5, Name: SpanScan, Tokens: i})
	}
	snap := fr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d span(s), want ring capacity 4", len(snap))
	}
	// Oldest-first eviction keeps the newest four, in record order.
	for i, sp := range snap {
		if sp.Tokens != 6+i {
			t.Errorf("snapshot[%d].Tokens = %d, want %d", i, sp.Tokens, 6+i)
		}
	}
	if v := reg.Counter(ObsRingEvictionsTotal, "").Value(); v != 6 {
		t.Errorf("evictions = %d, want 6", v)
	}
	fr.Interesting("test")
	fr.End("")
	if got := sink.Spans(); len(got) != 4 {
		t.Errorf("tail flush emitted %d span(s), want the surviving 4", len(got))
	}
}

func TestRecorderEndIdempotentAndStragglersDropped(t *testing.T) {
	sink := &CollectSink{}
	rec := NewRecorder(RecorderConfig{Sample: 0, Sink: sink})
	fr := rec.BeginFlow(6, PartyMB, NewSpanCtx())
	fr.Event(SpanEventAlert, "c2s", "sid 1")
	if d := fr.End(""); d != DispositionTail {
		t.Fatalf("first End = %v", d)
	}
	n := len(sink.Spans())
	if d := fr.End("late error"); d != DispositionTail {
		t.Errorf("second End = %v, want the settled tail", d)
	}
	fr.Emit(Span{Name: SpanScan})
	if got := len(sink.Spans()); got != n {
		t.Errorf("sink grew from %d to %d after End", n, got)
	}
	// The flow moved from live to recent exactly once.
	if live := rec.Live(); len(live) != 0 {
		t.Errorf("live table still has %d flow(s)", len(live))
	}
	recents := rec.Recent()
	if len(recents) != 1 || recents[0].Disposition != DispositionTail || recents[0].Reason != SpanEventAlert {
		t.Errorf("recent = %+v", recents)
	}
}

func TestRecorderNilSafety(t *testing.T) {
	var rec *Recorder
	if rec.Decide(testTraceID(1)) {
		t.Error("nil recorder sampled")
	}
	fr := rec.BeginFlowSampled(1, PartyMB, NewSpanCtx(), true)
	if fr != nil {
		t.Fatal("nil recorder returned a flow recorder")
	}
	// Every method must be a no-op on the nil flow recorder.
	fr.Emit(Span{Name: SpanScan})
	fr.Event(SpanEventAlert, "c2s", "sid 1")
	fr.Interesting("x")
	if fr.Head() {
		t.Error("nil flow recorder head-sampled")
	}
	if got := fr.Snapshot(); got != nil {
		t.Errorf("nil Snapshot = %v", got)
	}
	if d := fr.End("err"); d != DispositionDrop {
		t.Errorf("nil End = %v", d)
	}
	if rec.Live() != nil || rec.Recent() != nil {
		t.Error("nil recorder has flow tables")
	}
}

// TestRecorderConcurrentRecordFlushEvict drives many flows from many
// goroutines — concurrent Emit on shared flow recorders, Snapshot dumps,
// Interesting marks, and racing End calls — and is meaningful under -race.
func TestRecorderConcurrentRecordFlushEvict(t *testing.T) {
	sink := &CollectSink{}
	rec := NewRecorder(RecorderConfig{Events: 8, Sample: 0.5, Sink: sink, Metrics: NewRegistry()})
	const flows, writers, spans = 16, 4, 64
	var wg sync.WaitGroup
	for f := 0; f < flows; f++ {
		fr := rec.BeginFlow(uint64(f+1), PartyMB, NewSpanCtx())
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < spans; i++ {
					fr.Emit(Span{Flow: fr.flow, Name: SpanScan, Tokens: i})
					if i%16 == 0 {
						fr.Snapshot()
					}
				}
				if w == 0 {
					fr.Event(SpanEventAlert, "c2s", "sid 1")
				}
			}(w)
		}
		wg.Add(2)
		go func() { defer wg.Done(); fr.End("") }()
		go func() { defer wg.Done(); fr.End("racing") }()
	}
	wg.Wait()
	if live := rec.Live(); len(live) != 0 {
		t.Errorf("%d flow(s) still live", len(live))
	}
	for _, sp := range sink.Spans() {
		if sp.Sampled != string(DispositionHead) && sp.Sampled != string(DispositionTail) {
			t.Fatalf("sink span labeled %q", sp.Sampled)
		}
	}
}

// TestRecordPathZeroAllocs pins the dynamic half of the //bb:hotpath
// contract: at steady state (ring warmed past one wraparound) recording a
// span allocates nothing. Skipped under -race, whose instrumentation
// allocates on its own account.
func TestRecordPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rec := NewRecorder(RecorderConfig{Events: 32, Metrics: NewRegistry()})
	ctx := NewSpanCtx()
	fr := rec.BeginFlowSampled(9, PartyMB, ctx, false)
	sp := Span{Flow: 9, Party: PartyMB, Name: SpanScan, Dir: "c2s", Tokens: 512}
	ctx.Child().Stamp(&sp)
	for i := 0; i < 64; i++ {
		fr.Emit(sp)
	}
	if avg := testing.AllocsPerRun(1000, func() { fr.Emit(sp) }); avg != 0 {
		t.Errorf("record path allocates %.2f per span, want 0", avg)
	}
	fr.End("")
}

func TestRecorderDebugEndpoints(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(RecorderConfig{Sample: 0, Metrics: reg})
	ctx := NewSpanCtx()
	live := rec.BeginFlow(11, PartyMB, ctx)
	sp := Span{Flow: 11, Party: PartyMB, Name: SpanScan, Tokens: 3}
	ctx.Child().Stamp(&sp)
	live.Emit(sp)
	ended := rec.BeginFlow(12, PartyMB, NewSpanCtx())
	ended.Event(SpanEventAlert, "c2s", "sid 5")
	ended.End("")

	mux := AdminMux(reg)
	rec.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/debug/flows")
	if code != http.StatusOK {
		t.Fatalf("/debug/flows: code %d body %q", code, body)
	}
	var tables struct {
		Live   []FlowSummary `json:"live"`
		Recent []FlowSummary `json:"recent"`
	}
	if err := json.Unmarshal([]byte(body), &tables); err != nil {
		t.Fatalf("/debug/flows JSON: %v", err)
	}
	if len(tables.Live) != 1 || tables.Live[0].Flow != 11 || tables.Live[0].Disposition != DispositionLive {
		t.Errorf("live table = %+v", tables.Live)
	}
	if len(tables.Recent) != 1 || tables.Recent[0].Flow != 12 || tables.Recent[0].Disposition != DispositionTail {
		t.Errorf("recent table = %+v", tables.Recent)
	}

	if code, _ := get("/debug/flightrecorder"); code != http.StatusBadRequest {
		t.Errorf("missing flow param: code %d, want 400", code)
	}
	if code, _ := get("/debug/flightrecorder?flow=xyz"); code != http.StatusBadRequest {
		t.Errorf("bad flow param: code %d, want 400", code)
	}
	if code, _ := get("/debug/flightrecorder?flow=12"); code != http.StatusNotFound {
		t.Errorf("ended flow: code %d, want 404", code)
	}
	code, body = get("/debug/flightrecorder?flow=11")
	if code != http.StatusOK {
		t.Fatalf("live flow dump: code %d body %q", code, body)
	}
	var dump struct {
		Summary FlowSummary `json:"summary"`
		Spans   []Span      `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("flight recorder JSON: %v", err)
	}
	if dump.Summary.Flow != 11 || len(dump.Spans) != 1 || dump.Spans[0].Name != SpanScan {
		t.Errorf("dump = %+v", dump)
	}
	if dump.Spans[0].TraceID != ctx.TraceString() {
		t.Errorf("dumped span trace %q, want %q", dump.Spans[0].TraceID, ctx.TraceString())
	}
	if !strings.Contains(body, `"head_sampled"`) {
		t.Errorf("dump missing head_sampled field: %s", body)
	}
	live.End("")
}
