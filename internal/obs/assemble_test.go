package obs

import (
	"testing"
)

// buildTestTrace fabricates a three-party flow: client root conn span,
// client handshake, middlebox handshake/prep/forward + scans, server
// conn. The middlebox clock is skewed by mbSkew nanoseconds to exercise
// alignment.
func buildTestTrace(mbSkew int64) ([]Span, SpanCtx) {
	root := NewSpanCtx()
	hs := root.Child()
	mbHS := root.Child()
	mbPrep := root.Child()
	mbFwd := root.Child()
	scan := mbFwd.Child()
	srvConn := root.Child()
	srvHS := srvConn.Child()

	mk := func(ctx SpanCtx, party, name, dir string, start, dur int64) Span {
		sp := Span{Party: party, Name: name, Dir: dir, Flow: 1, Start: start, Dur: dur}
		ctx.Stamp(&sp)
		return sp
	}
	spans := []Span{
		mk(root, PartyClient, SpanConn, "", 1000, 10000),
		mk(hs, PartyClient, SpanHandshake, "", 1100, 4000),
		mk(mbHS, PartyMB, SpanHandshake, "", 1200+mbSkew, 800),
		mk(mbPrep, PartyMB, SpanPrep, "", 2100+mbSkew, 2500),
		mk(mbFwd, PartyMB, SpanForward, "c2s", 5200+mbSkew, 5000),
		mk(scan, PartyMB, SpanScan, "c2s", 6000+mbSkew, 500),
		mk(srvConn, PartyServer, SpanConn, "", 1300, 9000),
		mk(srvHS, PartyServer, SpanHandshake, "", 1350, 3900),
	}
	spans[5].Shard = ShardID(0)
	return spans, root
}

func TestAssembleWellFormedTrace(t *testing.T) {
	spans, root := buildTestTrace(0)
	flows, untraced, err := AssembleSpans(spans)
	if err != nil {
		t.Fatal(err)
	}
	if len(untraced) != 0 || len(flows) != 1 {
		t.Fatalf("flows=%d untraced=%d, want 1/0", len(flows), len(untraced))
	}
	ft := flows[0]
	if ft.Trace != root.Trace.String() {
		t.Fatalf("trace = %s, want %s", ft.Trace, root.Trace.String())
	}
	if ft.Root == nil || ft.Root.Span.SpanID != root.Span {
		t.Fatal("wrong root")
	}
	if len(ft.Orphans) != 0 {
		t.Fatalf("orphans: %+v", ft.Orphans)
	}
	if got := len(ft.Nodes()); got != len(spans) {
		t.Fatalf("tree holds %d spans, want %d", got, len(spans))
	}
	if ft.WallNs != 10000 {
		t.Fatalf("wall = %d, want 10000", ft.WallNs)
	}
	if ft.CritNs != ft.WallNs {
		t.Fatalf("critical total %d != wall %d", ft.CritNs, ft.WallNs)
	}
	// Children nest inside parents after clamping.
	var checkNest func(n *SpanNode)
	checkNest = func(n *SpanNode) {
		for _, c := range n.Children {
			if c.Start < n.Start || c.End > n.End {
				t.Fatalf("child %s [%d,%d] outside parent %s [%d,%d]",
					c.Span.Name, c.Start, c.End, n.Span.Name, n.Start, n.End)
			}
			checkNest(c)
		}
	}
	checkNest(ft.Root)
	// Stage stats see the parallel scans and all parties.
	stages := map[string]StageStat{}
	for _, st := range ft.Stages() {
		stages[st.Name] = st
	}
	if stages[SpanConn].Count != 2 || stages[SpanHandshake].Count != 3 {
		t.Fatalf("stage counts off: %+v", stages)
	}
}

func TestAssembleAlignsSkewedClocks(t *testing.T) {
	const skew = int64(5_000_000) // mb clock 5ms ahead
	spans, _ := buildTestTrace(skew)
	flows, _, err := AssembleSpans(spans)
	if err != nil {
		t.Fatal(err)
	}
	ft := flows[0]
	off, ok := ft.Offsets[PartyMB]
	if !ok {
		t.Fatal("no mb offset estimated")
	}
	// The true offset is -skew. The estimator anchors on the tightest
	// lower bound — the mb handshake span starting 200ns after the client
	// conn span — so the estimate is exactly -skew-200 here.
	if off != -skew-200 {
		t.Fatalf("mb offset = %d, want %d", off, -skew-200)
	}
	if ft.Offsets[PartyClient] != 0 {
		t.Fatalf("root party offset = %d, want 0", ft.Offsets[PartyClient])
	}
	if ft.CritNs != ft.WallNs {
		t.Fatalf("critical %d != wall %d after alignment", ft.CritNs, ft.WallNs)
	}
}

func TestAssembleReportsOrphansAndCycles(t *testing.T) {
	spans, root := buildTestTrace(0)
	// A span whose parent never reports.
	ghost := Span{TraceID: root.Trace.String(), SpanID: NewSpanID(), Parent: 424242, Party: PartyMB, Name: SpanScan, Flow: 1, Start: 5000, Dur: 10}
	// A two-span parent cycle, unreachable from the root.
	a, b := NewSpanID(), NewSpanID()
	cycA := Span{TraceID: root.Trace.String(), SpanID: a, Parent: b, Name: SpanScan, Flow: 1, Start: 6000, Dur: 10}
	cycB := Span{TraceID: root.Trace.String(), SpanID: b, Parent: a, Name: SpanScan, Flow: 1, Start: 6001, Dur: 10}
	flows, _, err := AssembleSpans(append(spans, ghost, cycA, cycB))
	if err != nil {
		t.Fatal(err)
	}
	ft := flows[0]
	if len(ft.Orphans) != 3 {
		t.Fatalf("orphans = %d, want 3 (%+v)", len(ft.Orphans), ft.Orphans)
	}
	if got := len(ft.Nodes()); got != len(spans) {
		t.Fatalf("tree grew to %d spans, want %d", got, len(spans))
	}
	// Critical path stays bounded by the wall-clock.
	if ft.CritNs > ft.WallNs {
		t.Fatalf("critical %d > wall %d", ft.CritNs, ft.WallNs)
	}
}

func TestAssembleSeparatesUntracedSpans(t *testing.T) {
	spans, _ := buildTestTrace(0)
	flat := Span{Name: SpanScan, Flow: 9, Start: 1, Dur: 2} // v1 record
	flows, untraced, err := AssembleSpans(append([]Span{flat}, spans...))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 || len(untraced) != 1 || untraced[0].Flow != 9 {
		t.Fatalf("flows=%d untraced=%+v", len(flows), untraced)
	}
}

func TestUnionNs(t *testing.T) {
	cases := []struct {
		iv   []Interval
		want int64
	}{
		{nil, 0},
		{[]Interval{{0, 10}}, 10},
		{[]Interval{{0, 10}, {5, 15}}, 15},
		{[]Interval{{0, 10}, {20, 30}}, 20},
		{[]Interval{{20, 30}, {0, 10}, {9, 21}}, 30},
		{[]Interval{{5, 5}, {7, 3}}, 0}, // empty and inverted
	}
	for i, c := range cases {
		if got := UnionNs(c.iv); got != c.want {
			t.Errorf("case %d: UnionNs = %d, want %d", i, got, c.want)
		}
	}
}

func TestMaxConcurrency(t *testing.T) {
	iv := []Interval{{0, 10}, {2, 8}, {3, 5}, {10, 12}}
	if got := maxConcurrency(iv); got != 3 {
		t.Fatalf("maxConcurrency = %d, want 3", got)
	}
	if got := maxConcurrency(nil); got != 0 {
		t.Fatalf("maxConcurrency(nil) = %d, want 0", got)
	}
}
