package agg

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// newTestScraper wires a scraper over the given fixtures with a fast
// single-attempt retry.
func newTestScraper(t *testing.T, fixtures map[string]*workerFixture) *Scraper {
	t.Helper()
	var targets []Target
	for _, name := range sortedKeys(fixtures) {
		targets = append(targets, Target{Name: name, URL: fixtures[name].srv.URL})
	}
	s, err := New(Config{Targets: targets, Retry: quickRetry, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestClusterMetricsMergeAndRollups(t *testing.T) {
	w1 := newWorkerFixture(t)
	w2 := newWorkerFixture(t)
	w1.reg.Counter(obs.MBTokensScannedTotal, obs.Help(obs.MBTokensScannedTotal)).Add(100)
	w2.reg.Counter(obs.MBTokensScannedTotal, obs.Help(obs.MBTokensScannedTotal)).Add(23)
	w1.reg.CounterVec(obs.MBAlertsBySID, obs.Help(obs.MBAlertsBySID), "sid").With("7").Add(2)
	w2.reg.CounterVec(obs.MBAlertsBySID, obs.Help(obs.MBAlertsBySID), "sid").With("7").Add(3)
	h1 := w1.reg.Histogram(obs.MBScanSeconds, obs.Help(obs.MBScanSeconds), obs.LatencyBuckets)
	h2 := w2.reg.Histogram(obs.MBScanSeconds, obs.Help(obs.MBScanSeconds), obs.LatencyBuckets)
	h1.Observe(0.002)
	h1.Observe(0.004)
	h2.Observe(0.008)

	s := newTestScraper(t, map[string]*workerFixture{"w1": w1, "w2": w2})
	if err := s.ScrapeOnce(nil); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := s.WriteClusterMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()

	// The merged body must itself be a valid exposition (dogfood the
	// parser) with no duplicate family declarations.
	expo, err := Parse(strings.NewReader(body))
	if err != nil {
		t.Fatalf("cluster metrics body does not re-parse: %v\n%s", err, body)
	}
	declared := map[string]int{}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			declared[strings.Fields(line)[2]]++
		}
	}
	for name, n := range declared {
		if n > 1 {
			t.Errorf("family %s declared %d times", name, n)
		}
	}

	// Per-worker series and the fleet rollup.
	tok := expo.Family(obs.MBTokensScannedTotal)
	for _, tc := range []struct {
		labels map[string]string
		want   float64
	}{
		{map[string]string{"worker": "w1"}, 100},
		{map[string]string{"worker": "w2"}, 23},
		{map[string]string{"worker": FleetLabel}, 123},
	} {
		if v, ok := tok.With(tc.labels); !ok || v != tc.want {
			t.Errorf("tokens %v = %v, %v (want %g)", tc.labels, v, ok, tc.want)
		}
	}
	sid := expo.Family(obs.MBAlertsBySID)
	if v, ok := sid.With(map[string]string{"worker": FleetLabel, "sid": "7"}); !ok || v != 5 {
		t.Errorf("fleet alerts_by_sid{sid=7} = %v, %v, want 5", v, ok)
	}
	// Histogram rollup: bucket counts, sum and count sum pointwise.
	hf, ok := expo.Family(obs.MBScanSeconds).Histogram(map[string]string{"worker": FleetLabel})
	if !ok || hf.Count != 3 {
		t.Fatalf("fleet scan histogram = %+v, %v", hf, ok)
	}
	if math.Abs(hf.Sum-0.014) > 1e-9 {
		t.Errorf("fleet scan sum = %g, want ~0.014", hf.Sum)
	}

	// The aggregator's own registry rides along: scrape self-metrics and
	// the SLO gauges refreshed by the render.
	if v := expo.Labeled(obs.FleetScrapesTotal)["w1"]; v != 1 {
		t.Errorf("own registry missing: scrapes{w1} = %v, want 1", v)
	}
	if v := expo.Labeled(obs.FleetSLOUp)["scan_p99"]; v != 1 {
		t.Errorf("slo_up{scan_p99} = %v, want 1", v)
	}
}

func TestSLOEvaluationBreachFlipsCheck(t *testing.T) {
	w := newWorkerFixture(t)
	w.reg.Counter(obs.MBConnectionsTotal, obs.Help(obs.MBConnectionsTotal)).Add(50)
	unscanned := w.reg.Counter(obs.MBUnscannedBytes, obs.Help(obs.MBUnscannedBytes))

	s := newTestScraper(t, map[string]*workerFixture{"w1": w})
	if err := s.ScrapeOnce(nil); err != nil {
		t.Fatal(err)
	}
	if rep := s.Check(); !rep.OK {
		t.Fatalf("healthy fleet check failed: %+v", rep.SLOs)
	}

	// A chaos-style fail-open degradation blows the unscanned-bytes
	// budget; the check verdict must flip.
	unscanned.Add(4096)
	if err := s.ScrapeOnce(nil); err != nil {
		t.Fatal(err)
	}
	rep := s.Check()
	if rep.OK {
		t.Fatal("check stayed OK with a breached unscanned-bytes budget")
	}
	var found bool
	for _, r := range rep.SLOs {
		if r.Name == "unscanned_bytes" {
			found = true
			if r.OK || float64(r.Value) != 4096 {
				t.Errorf("unscanned_bytes = %+v", r)
			}
		}
	}
	if !found {
		t.Fatal("unscanned_bytes SLO missing from report")
	}

	// The breach is exported on the aggregator's registry.
	var buf strings.Builder
	if err := s.cfg.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	expo, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v := expo.Labeled(obs.FleetSLOUp)["unscanned_bytes"]; v != 0 {
		t.Errorf("slo_up{unscanned_bytes} = %v, want 0", v)
	}
	if v := expo.Labeled(obs.FleetSLOBreachesTotal)["unscanned_bytes"]; v < 1 {
		t.Errorf("slo_breaches{unscanned_bytes} = %v, want >= 1", v)
	}

	// The check report must survive JSON encoding even with NaN SLO
	// values (no scan histogram was ever scraped here).
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("check report does not marshal: %v", err)
	}
}

func TestSLOQuantileAndRatioKinds(t *testing.T) {
	body := `# TYPE blindbox_mb_scan_seconds histogram
blindbox_mb_scan_seconds_bucket{le="0.01"} 90
blindbox_mb_scan_seconds_bucket{le="1"} 100
blindbox_mb_scan_seconds_bucket{le="+Inf"} 100
blindbox_mb_scan_seconds_sum 5.5
blindbox_mb_scan_seconds_count 100
# TYPE blindbox_mb_conn_errors_total counter
blindbox_mb_conn_errors_total 10
# TYPE blindbox_mb_connections_total counter
blindbox_mb_connections_total 100
`
	expo, err := Parse(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	expos := map[string]*Exposition{"w1": expo}

	byName := map[string]SLOResult{}
	for _, r := range EvaluateSLOs(DefaultSLOs(), expos) {
		byName[r.Name] = r
	}
	// p99 lands in the (0.01, 1] bucket: far over the 100 ms bound.
	if r := byName["scan_p99"]; r.OK || float64(r.Value) <= 0.1 {
		t.Errorf("scan_p99 = %+v, want breach", r)
	}
	// 10% connection errors breach the 5% ratio bound.
	if r := byName["conn_error_ratio"]; r.OK || float64(r.Value) != 0.1 {
		t.Errorf("conn_error_ratio = %+v, want breach at 0.1", r)
	}
	// No data at all: objectives evaluate as met, not breached.
	for _, r := range EvaluateSLOs(DefaultSLOs(), nil) {
		if !r.OK {
			t.Errorf("no-data SLO %s breached: %+v", r.Name, r)
		}
	}
	// An unknown kind must not silently pass.
	if bad := EvaluateSLOs([]SLO{{Name: "typo", Kind: "nonsense", Threshold: 1}}, expos); bad[0].OK {
		t.Error("unknown SLO kind evaluated as met")
	}
}

func TestClusterTraceAssemblesAcrossWorkers(t *testing.T) {
	// One flow whose live flight-recorder spans are split across two
	// workers under a shared trace: the root conn span and a scan span
	// on w1, a forward span on w2. /cluster/trace must pull both rings
	// and assemble a single acyclic tree.
	ctx := obs.NewSpanCtx()
	base := time.Now().UnixNano()

	mkWorker := func(flow uint64, spans ...obs.Span) *workerFixture {
		reg := obs.NewRegistry()
		mux := obs.AdminMux(reg)
		rec := obs.NewRecorder(obs.RecorderConfig{Metrics: reg})
		rec.Mount(mux)
		f := rec.BeginFlowSampled(flow, obs.PartyMB, ctx, false)
		for _, sp := range spans {
			f.Emit(sp)
		}
		t.Cleanup(func() { f.End("") })
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return &workerFixture{reg: reg, srv: srv}
	}

	root := obs.Span{Flow: 1, Party: obs.PartyMB, Name: obs.SpanConn, Start: base, Dur: int64(time.Second)}
	ctx.Stamp(&root) // root context: Parent 0
	scan := obs.Span{Flow: 1, Party: obs.PartyMB, Name: obs.SpanScan, Start: base + 1000, Dur: int64(time.Millisecond), Tokens: 8}
	ctx.Child().Stamp(&scan)
	fwd := obs.Span{Flow: 2, Party: obs.PartyMB, Name: obs.SpanForward, Start: base + 2000, Dur: int64(time.Millisecond)}
	ctx.Child().Stamp(&fwd)

	w1 := mkWorker(1, root, scan)
	w2 := mkWorker(2, fwd)
	s := newTestScraper(t, map[string]*workerFixture{"w1": w1, "w2": w2})
	srv := httptest.NewServer(s.Mux())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/cluster/trace?id=" + ctx.TraceString())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("/cluster/trace: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var tr TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.Trace != ctx.TraceString() || tr.Spans != 3 || tr.Orphans != 0 || tr.Partial {
		t.Fatalf("trace response = %+v", tr)
	}
	if len(tr.Workers) != 2 || tr.Workers[0] != "w1" || tr.Workers[1] != "w2" {
		t.Fatalf("contributing workers = %v, want [w1 w2]", tr.Workers)
	}
	if len(tr.Tree) != 3 {
		t.Fatalf("tree has %d nodes, want 3", len(tr.Tree))
	}
	// Preorder tree shape: one root at depth 0, every later node at
	// most one level deeper than its predecessor — acyclic by
	// construction.
	if tr.Tree[0].Depth != 0 || tr.Tree[0].Span.Name != obs.SpanConn {
		t.Fatalf("root node = %+v", tr.Tree[0])
	}
	for i := 1; i < len(tr.Tree); i++ {
		if d := tr.Tree[i].Depth; d < 1 || d > tr.Tree[i-1].Depth+1 {
			t.Errorf("node %d depth %d breaks preorder", i, d)
		}
	}
	if tr.WallNs != int64(time.Second) {
		t.Errorf("wall = %d, want 1s", tr.WallNs)
	}

	// Error paths: missing, malformed and unknown IDs.
	for _, tc := range []struct {
		path string
		code int
	}{
		{"/cluster/trace", 400},
		{"/cluster/trace?id=zz", 400},
		{"/cluster/trace?id=ffffffffffffffffffffffffffffffff", 404},
	} {
		resp, err := srv.Client().Get(srv.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.path, resp.StatusCode, tc.code)
		}
	}

	// Every worker unreachable: the pull error surfaces as 502.
	w1.srv.Close()
	w2.srv.Close()
	resp2, err := srv.Client().Get(srv.URL + "/cluster/trace?id=" + ctx.TraceString())
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 502 {
		t.Errorf("all workers down: status %d, want 502", resp2.StatusCode)
	}
}

// TestConcurrentScrapeAndRender exercises the scraper's locking under
// the race detector: periodic scrapes racing /cluster/metrics renders,
// health reads and SLO evaluation.
func TestConcurrentScrapeAndRender(t *testing.T) {
	w1 := newWorkerFixture(t)
	w2 := newWorkerFixture(t)
	c1 := w1.reg.Counter(obs.MBTokensScannedTotal, obs.Help(obs.MBTokensScannedTotal))
	c2 := w2.reg.Counter(obs.MBTokensScannedTotal, obs.Help(obs.MBTokensScannedTotal))

	s, err := New(Config{
		Targets:  []Target{{Name: "w1", URL: w1.srv.URL}, {Name: "w2", URL: w2.srv.URL}},
		Interval: time.Millisecond,
		Retry:    quickRetry,
		Metrics:  obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		s.Run(stop)
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			c1.Add(3)
			c2.Add(5)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := s.WriteClusterMetrics(io.Discard); err != nil {
				t.Errorf("render: %v", err)
				return
			}
			s.Workers()
			s.Check()
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Sanity: the final render still parses and rolls up the settled
	// totals.
	if err := s.ScrapeOnce(nil); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := s.WriteClusterMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	expo, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("final render does not parse: %v", err)
	}
	if v, ok := expo.Family(obs.MBTokensScannedTotal).With(map[string]string{"worker": FleetLabel}); !ok || v != 6000+10000 {
		t.Errorf("final fleet tokens = %v, %v, want 16000", v, ok)
	}
}
