package agg

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
)

// catalogKind tells the round-trip test how to register each catalog
// family. Every obs.Catalog entry must appear here — a new metric that
// misses the table fails the test, keeping the round-trip golden
// complete as the catalog grows.
var catalogKind = map[string]struct {
	kind  string // "counter", "gauge", "histogram", "countervec", "gaugevec"
	label string // vec label name
}{
	obs.MBConnectionsTotal:   {kind: "counter"},
	obs.MBConnErrorsTotal:    {kind: "counter"},
	obs.MBTokensScannedTotal: {kind: "counter"},
	obs.MBBytesForwarded:     {kind: "counter"},
	obs.MBAlertsTotal:        {kind: "counter"},
	obs.MBBlockedTotal:       {kind: "counter"},
	obs.MBKeysRecovered:      {kind: "counter"},
	obs.MBAlertsBySID:        {kind: "countervec", label: "sid"},
	obs.MBShardQueueDepth:    {kind: "gaugevec", label: "shard"},
	obs.MBScanSeconds:        {kind: "histogram"},
	obs.MBBarrierWaitSeconds: {kind: "histogram"},
	obs.MBHandshakeSeconds:   {kind: "histogram"},
	obs.MBPrepSeconds:        {kind: "histogram"},

	obs.MBTimeoutsTotal:        {kind: "countervec", label: "step"},
	obs.MBRetriesTotal:         {kind: "countervec", label: "op"},
	obs.MBDegradedTotal:        {kind: "counter"},
	obs.MBFailClosedDropsTotal: {kind: "counter"},
	obs.MBUnscannedBytes:       {kind: "counter"},

	obs.ConnHandshakeSeconds: {kind: "histogram"},
	obs.ConnRecordsTotal:     {kind: "counter"},
	obs.ConnRecordBytes:      {kind: "histogram"},
	obs.ConnDialRetriesTotal: {kind: "counter"},

	obs.SenderTokenizeSeconds: {kind: "histogram"},
	obs.SenderEncryptSeconds:  {kind: "histogram"},

	obs.DPIEncTokensTotal: {kind: "counter"},
	obs.DPIEncResetsTotal: {kind: "counter"},

	obs.DetectTokensTotal: {kind: "counter"},
	obs.DetectEventsTotal: {kind: "counter"},

	obs.BaselinePacketsTotal: {kind: "counter"},
	obs.BaselineHitsTotal:    {kind: "counter"},

	obs.ObsSamplerDecisionsTotal: {kind: "countervec", label: "decision"},
	obs.ObsFlowsTotal:            {kind: "countervec", label: "disposition"},
	obs.ObsRingEvictionsTotal:    {kind: "counter"},
	obs.ObsSpansFlushedTotal:     {kind: "counter"},
	obs.ObsSpansDroppedTotal:     {kind: "counter"},
	obs.ObsRecordSeconds:         {kind: "histogram"},

	obs.BuildInfo:  {kind: "gaugevec", label: "version"},
	obs.WorkerInfo: {kind: "gaugevec", label: "worker"},

	obs.FleetScrapesTotal:      {kind: "countervec", label: "worker"},
	obs.FleetScrapeErrorsTotal: {kind: "countervec", label: "worker"},
	obs.FleetScrapeSeconds:     {kind: "histogram"},
	obs.FleetStalenessSeconds:  {kind: "gaugevec", label: "worker"},
	obs.FleetWorkerUp:          {kind: "gaugevec", label: "worker"},
	obs.FleetSLOUp:             {kind: "gaugevec", label: "slo"},
	obs.FleetSLOBreachesTotal:  {kind: "countervec", label: "slo"},
}

// populateCatalog registers every catalog family with distinctive
// values: counters and gauges offset by their registration index,
// histograms observing values on, between and beyond their bounds,
// vecs with multiple children.
func populateCatalog(t *testing.T, r *obs.Registry) {
	t.Helper()
	names := make([]string, 0, len(obs.Catalog))
	for name := range obs.Catalog {
		names = append(names, name)
	}
	// Deterministic registration order for a stable exposition.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for i, name := range names {
		spec, ok := catalogKind[name]
		if !ok {
			t.Fatalf("catalog metric %s missing from catalogKind — extend the round-trip table", name)
		}
		help := obs.Help(name)
		switch spec.kind {
		case "counter":
			r.Counter(name, help).Add(uint64(i*7 + 1))
		case "gauge":
			r.Gauge(name, help).Set(int64(i*3 - 5))
		case "histogram":
			buckets := obs.LatencyBuckets
			if strings.HasSuffix(name, "_bytes") {
				buckets = obs.SizeBuckets
			}
			h := r.Histogram(name, help, buckets)
			h.Observe(buckets[0])                      // exactly on the first bound
			h.Observe((buckets[0] + buckets[1]) / 2)   // between bounds
			h.Observe(buckets[len(buckets)-1] * 1e3)   // +Inf bucket
			h.Observe(float64(i) * buckets[0] / 10000) // sub-first-bound
		case "countervec":
			v := r.CounterVec(name, help, spec.label)
			v.With("alpha").Add(uint64(i + 1))
			v.With("beta").Add(uint64(2*i + 3))
			v.With("42").Inc()
		case "gaugevec":
			v := r.GaugeVec(name, help, spec.label)
			v.With("zero").Set(0)
			v.With("neg").Set(int64(-i - 1))
			v.With("pos").Set(int64(i * 11))
		default:
			t.Fatalf("catalogKind[%s]: unknown kind %q", name, spec.kind)
		}
	}
}

// TestRoundTrip is the exposition round-trip golden test: for every
// metric family in the catalog, Registry → WritePrometheus → Parse →
// JSONSnapshot must reproduce Registry.Snapshot exactly (compared as
// canonical JSON). This pins the text format the fleet scraper depends
// on from both sides.
func TestRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	populateCatalog(t, reg)

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	expo, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("Parse of own exposition: %v", err)
	}

	want, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(expo.JSONSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Errorf("round-trip mismatch:\nregistry: %s\nparsed:   %s", want, got)
	}

	// HELP strings survive the trip too.
	for name, help := range obs.Catalog {
		f := expo.Family(name)
		if f == nil {
			t.Errorf("family %s missing after round-trip", name)
			continue
		}
		if f.Help != help {
			t.Errorf("family %s help %q, want %q", name, f.Help, help)
		}
	}
}

// TestRoundTripEscapes pins label-value and help escaping through the
// round trip: quotes, backslashes and newlines.
func TestRoundTripEscapes(t *testing.T) {
	reg := obs.NewRegistry()
	nasty := "a\"b\\c\nd\te"
	reg.CounterVec("bb_esc_total", "line one\nline \\two", "k").With(nasty).Add(9)

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	expo, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("Parse: %v\nbody:\n%s", err, buf.String())
	}
	f := expo.Family("bb_esc_total")
	if f == nil {
		t.Fatal("family missing")
	}
	if f.Help != "line one\nline \\two" {
		t.Errorf("help %q", f.Help)
	}
	if v, ok := f.With(map[string]string{"k": nasty}); !ok || v != 9 {
		t.Errorf("labeled value = %v, %v", v, ok)
	}
}

// TestParseRejectsGarbage pins the failure mode the scraper relies on:
// truncated or garbage bodies fail Parse rather than half-ingesting.
func TestParseRejectsGarbage(t *testing.T) {
	bad := []struct{ name, body string }{
		{"binary garbage", "\x00\x01\x02 nonsense"},
		{"missing value", "blindbox_mb_connections_total\n"},
		{"truncated mid-line", "blindbox_mb_connections_total 4\nblindbox_mb_conn"},
		{"bad value", "blindbox_mb_connections_total pony\n"},
		{"unterminated label", `blindbox_x_total{sid="4 7` + "\n"},
		{"missing label value", "blindbox_x_total{sid} 1\n"},
		{"bad TYPE kind", "# TYPE blindbox_x_total fancy\n"},
		{"bad TYPE name", "# TYPE 9bad counter\n"},
	}
	for _, tc := range bad {
		if _, err := Parse(strings.NewReader(tc.body)); err == nil {
			t.Errorf("%s: Parse accepted %q", tc.name, tc.body)
		}
	}

	ok := []struct{ name, body string }{
		{"empty", ""},
		{"comment only", "# just a comment\n"},
		{"timestamp", "bb_x_total 4 1712345678000\n"},
		{"inf and nan", "bb_up +Inf\nbb_down -Inf\nbb_nan NaN\n"},
		{"trailing comma labels", `bb_x_total{a="1",} 2` + "\n"},
		{"no trailing newline", "bb_x_total 4"},
	}
	for _, tc := range ok {
		if _, err := Parse(strings.NewReader(tc.body)); err != nil {
			t.Errorf("%s: Parse rejected %q: %v", tc.name, tc.body, err)
		}
	}
}

// TestHistogramQuantile sanity-checks the reconstruction + quantile
// math the SLO evaluator uses.
func TestHistogramQuantile(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("bb_lat_seconds", "L.", []float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // third bucket
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	expo, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	hist, ok := expo.Histogram("bb_lat_seconds")
	if !ok {
		t.Fatal("histogram not reconstructed")
	}
	if hist.Count != 100 || len(hist.Bounds) != 3 || len(hist.Cum) != 4 {
		t.Fatalf("hist = %+v", hist)
	}
	if p50 := hist.Quantile(0.5); p50 > 0.01 {
		t.Errorf("p50 = %g, want <= 0.01", p50)
	}
	p99 := hist.Quantile(0.99)
	if p99 < 0.1 || p99 > 1 {
		t.Errorf("p99 = %g, want in (0.1, 1]", p99)
	}
	if !math.IsNaN((&Hist{}).Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}

	// Merge doubles every count; mismatched bounds refuse.
	clone := hist.Clone()
	if err := clone.Merge(hist); err != nil {
		t.Fatal(err)
	}
	if clone.Count != 200 || clone.Cum[0] != 180 {
		t.Errorf("merged = %+v", clone)
	}
	if err := clone.Merge(&Hist{Bounds: []float64{1}, Cum: []uint64{0, 0}}); err == nil {
		t.Error("Merge accepted mismatched bounds")
	}
}

// TestMultiLabelParse covers what /cluster/metrics itself emits: a
// worker label stacked on an existing label, and worker-labeled
// histograms reconstructed per worker.
func TestMultiLabelParse(t *testing.T) {
	body := `# TYPE blindbox_mb_alerts_by_sid_total counter
blindbox_mb_alerts_by_sid_total{worker="w1",sid="7"} 3
blindbox_mb_alerts_by_sid_total{worker="w2",sid="7"} 4
# TYPE blindbox_mb_scan_seconds histogram
blindbox_mb_scan_seconds_bucket{worker="w1",le="0.1"} 2
blindbox_mb_scan_seconds_bucket{worker="w1",le="+Inf"} 2
blindbox_mb_scan_seconds_sum{worker="w1"} 0.05
blindbox_mb_scan_seconds_count{worker="w1"} 2
`
	expo, err := Parse(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	f := expo.Family("blindbox_mb_alerts_by_sid_total")
	if v, ok := f.With(map[string]string{"worker": "w2", "sid": "7"}); !ok || v != 4 {
		t.Errorf("w2 sid 7 = %v, %v", v, ok)
	}
	h, ok := expo.Family("blindbox_mb_scan_seconds").Histogram(map[string]string{"worker": "w1"})
	if !ok || h.Count != 2 || h.Sum != 0.05 {
		t.Errorf("w1 histogram = %+v, %v", h, ok)
	}
	if _, ok := expo.Histogram("blindbox_mb_scan_seconds"); ok {
		t.Error("unlabeled histogram lookup matched a worker-labeled one")
	}
}
