// The aggregated admin mux: the fleet's single pane of glass.
//
//	/cluster/metrics   merged exposition — every worker family re-emitted
//	                   with a worker label, plus a worker="fleet" rollup
//	                   series per family (pointwise sum), plus the
//	                   aggregator's own blindbox_fleet_* registry
//	/cluster/workers   health JSON: per-worker rows + SLO verdicts
//	/cluster/trace?id= cross-worker trace assembly: pulls the matching
//	                   flight-recorder spans from every worker's /debug/
//	                   endpoints and feeds them through obs.AssembleSpans
//
// The rollup contract the fleet e2e pins: for every counter/gauge
// family the worker="fleet" series equals the exact sum of the
// per-worker series (integer totals well inside float64's exact range),
// so /cluster/metrics totals match the sum of per-worker
// middlebox.Stats() to the digit.

package agg

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Mount adds the /cluster/* views to mux (typically obs.AdminMux of the
// scraper's own registry, so /metrics serves the aggregator's
// self-metrics alongside).
func (s *Scraper) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/cluster/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//lint:ignore unchecked-err a failed scrape write means the client went away; nothing to do
		s.WriteClusterMetrics(w)
	})
	mux.HandleFunc("/cluster/workers", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		//lint:ignore unchecked-err a failed health-dump write means the client went away; nothing to do
		enc.Encode(s.Check())
	})
	mux.HandleFunc("/cluster/trace", func(w http.ResponseWriter, req *http.Request) {
		id := req.URL.Query().Get("id")
		if id == "" {
			http.Error(w, "missing id parameter (use /cluster/trace?id=<32-hex trace ID>)", http.StatusBadRequest)
			return
		}
		if _, err := obs.ParseTraceID(id); err != nil {
			http.Error(w, "bad id parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		tr, err := s.Trace(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		if tr == nil {
			http.Error(w, "no live flow records trace "+id+" on any worker", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		//lint:ignore unchecked-err a failed trace-dump write means the client went away; nothing to do
		enc.Encode(tr)
	})
}

// Mux returns a fresh admin mux for the aggregator: obs.AdminMux over
// the scraper's metrics registry (when configured) plus the /cluster/*
// views — what cmd/bbfleet serves behind -admin.
func (s *Scraper) Mux() *http.ServeMux {
	mux := obs.AdminMux(s.cfg.Metrics)
	s.Mount(mux)
	return mux
}

// mergedFamily accumulates one family across workers for rendering.
type mergedFamily struct {
	name string
	fam  *Family // first worker's declaration (help/type source)
	// series are the per-worker samples in (config order, body order).
	series []workerSample
}

// workerSample is one re-labeled output series.
type workerSample struct {
	worker string
	s      Sample
}

// WriteClusterMetrics renders the merged exposition. Rendering order:
// worker families (union, first-seen order), each with its per-worker
// series and a worker="fleet" rollup, then the aggregator's own
// registry minus any family already emitted (blindbox_build_info is on
// both sides; the worker-labeled series win).
func (s *Scraper) WriteClusterMetrics(w io.Writer) error {
	s.EvaluateSLOs() // refresh blindbox_fleet_slo_* before rendering

	names, expos := s.latest()
	var order []string
	merged := map[string]*mergedFamily{}
	for _, worker := range names {
		for _, fam := range expos[worker].Families {
			mf, ok := merged[fam.Name]
			if !ok {
				mf = &mergedFamily{name: fam.Name, fam: fam}
				merged[fam.Name] = mf
				order = append(order, fam.Name)
			}
			for _, sample := range fam.Samples {
				mf.series = append(mf.series, workerSample{worker: worker, s: sample})
			}
		}
	}
	for _, name := range order {
		if err := writeMergedFamily(w, merged[name]); err != nil {
			return err
		}
	}
	return s.writeOwnRegistry(w, merged)
}

// writeMergedFamily emits one family: HELP/TYPE once, per-worker series,
// then the worker="fleet" pointwise-sum rollup.
func writeMergedFamily(w io.Writer, mf *mergedFamily) error {
	if mf.fam.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", mf.name, escapeHelp(mf.fam.Help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", mf.name, mf.fam.Type); err != nil {
		return err
	}
	// Rollup accumulation keyed by (suffix, canonical labels), first-seen
	// order — for histograms this preserves ascending le order.
	type rollup struct {
		suffix string
		labels map[string]string
		value  float64
	}
	var rollOrder []string
	rolls := map[string]*rollup{}
	for _, ws := range mf.series {
		if err := writeSample(w, mf.name, ws.s, ws.worker); err != nil {
			return err
		}
		key := ws.s.Suffix + "|" + canonicalLabels(ws.s.Labels)
		r, ok := rolls[key]
		if !ok {
			r = &rollup{suffix: ws.s.Suffix, labels: ws.s.Labels}
			rolls[key] = r
			rollOrder = append(rollOrder, key)
		}
		r.value += ws.s.Value
	}
	for _, key := range rollOrder {
		r := rolls[key]
		if err := writeSample(w, mf.name, Sample{Suffix: r.suffix, Labels: r.labels, Value: r.value}, FleetLabel); err != nil {
			return err
		}
	}
	return nil
}

// writeSample emits one series line with the worker label prepended. A
// series that already carries its own worker label (blindbox_worker_info)
// keeps it under the federation convention's exported_ prefix, so the
// scrape-assigned name and the worker's self-reported name stay
// side-by-side comparable instead of colliding.
func writeSample(w io.Writer, name string, s Sample, worker string) error {
	var b strings.Builder
	b.WriteString(name)
	b.WriteString(s.Suffix)
	b.WriteString(`{worker=`)
	b.WriteString(strconv.Quote(worker))
	for _, k := range sortedKeys(s.Labels) {
		b.WriteString(",")
		if k == "worker" {
			b.WriteString("exported_worker")
		} else {
			b.WriteString(k)
		}
		b.WriteString("=")
		b.WriteString(strconv.Quote(s.Labels[k]))
	}
	b.WriteString("} ")
	b.WriteString(formatValue(s.Value))
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// formatValue renders a sample value the way Prometheus clients do.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// canonicalLabels renders a label set as a stable map key.
func canonicalLabels(labels map[string]string) string {
	var b strings.Builder
	for _, k := range sortedKeys(labels) {
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(strconv.Quote(labels[k]))
		b.WriteString(",")
	}
	return b.String()
}

// escapeHelp escapes newlines and backslashes per the exposition format
// (the inverse of unescapeHelp).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// writeOwnRegistry appends the aggregator's own registry, skipping any
// family the merged section already declared.
func (s *Scraper) writeOwnRegistry(w io.Writer, merged map[string]*mergedFamily) error {
	reg := s.cfg.Metrics
	if reg == nil {
		return nil
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		return err
	}
	own, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		return err
	}
	for _, fam := range own.Families {
		if _, dup := merged[fam.Name]; dup {
			continue
		}
		if fam.Help != "" {
			if _, werr := fmt.Fprintf(w, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help)); werr != nil {
				return werr
			}
		}
		if _, werr := fmt.Fprintf(w, "# TYPE %s %s\n", fam.Name, fam.Type); werr != nil {
			return werr
		}
		for _, sample := range fam.Samples {
			if werr := writePlainSample(w, fam.Name, sample); werr != nil {
				return werr
			}
		}
	}
	return nil
}

// writePlainSample emits one series line without a worker label.
func writePlainSample(w io.Writer, name string, s Sample) error {
	var b strings.Builder
	b.WriteString(name)
	b.WriteString(s.Suffix)
	if len(s.Labels) > 0 {
		b.WriteString("{")
		for i, k := range sortedKeys(s.Labels) {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(k)
			b.WriteString("=")
			b.WriteString(strconv.Quote(s.Labels[k]))
		}
		b.WriteString("}")
	}
	b.WriteString(" ")
	b.WriteString(formatValue(s.Value))
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// TraceNode is one span of an assembled cross-worker trace, flattened
// in preorder (Depth 0 is the root) — depth-encoding keeps the JSON
// free of recursive types while preserving the tree shape, and a
// preorder flattening of a tree is acyclic by construction.
type TraceNode struct {
	// Depth is the node's distance from the root.
	Depth int `json:"depth"`
	// Span is the raw record.
	Span obs.Span `json:"span"`
	// StartNs and EndNs are the clock-aligned interval bounds.
	StartNs int64 `json:"start_ns"`
	EndNs   int64 `json:"end_ns"`
	// SelfCritNs is the critical-path time attributed to this span.
	SelfCritNs int64 `json:"self_crit_ns"`
}

// TraceResponse is the /cluster/trace?id= body: one assembled flow.
type TraceResponse struct {
	// Trace is the 32-hex trace ID.
	Trace string `json:"trace"`
	// Workers lists the workers whose pull contributed spans.
	Workers []string `json:"workers"`
	// PullErrors lists workers whose pull failed (best-effort assembly
	// continues over the rest).
	PullErrors []string `json:"pull_errors,omitempty"`
	// Spans counts the assembled spans; Orphans counts spans not
	// reachable from the root (0 for a well-formed trace).
	Spans   int `json:"spans"`
	Orphans int `json:"orphans"`
	// Partial marks a synthesized root (sampled-out rooting party).
	Partial bool `json:"partial,omitempty"`
	// WallNs and CritNs are the flow wall-clock and attributed
	// critical-path total.
	WallNs int64 `json:"wall_ns"`
	CritNs int64 `json:"crit_ns"`
	// Offsets maps each party to its estimated clock offset.
	Offsets map[string]int64 `json:"offsets,omitempty"`
	// Stages aggregates spans by name with critical-path attribution.
	Stages []obs.StageStat `json:"stages"`
	// Tree is the span tree in preorder.
	Tree []TraceNode `json:"tree"`
}

// Trace pulls trace id's live flight-recorder spans from every worker
// and assembles them into one cross-worker tree. (nil, nil) when no
// worker holds spans for the trace; an error only when every pull
// failed.
func (s *Scraper) Trace(id string) (*TraceResponse, error) {
	var spans []obs.Span
	var contributed, failed []string
	for _, w := range s.workers {
		got, err := PullSpans(s.client, w.url, id)
		if err != nil {
			failed = append(failed, fmt.Sprintf("%s: %v", w.name, err))
			continue
		}
		if len(got) > 0 {
			contributed = append(contributed, w.name)
			spans = append(spans, got...)
		}
	}
	if len(spans) == 0 {
		if len(failed) == len(s.workers) && len(failed) > 0 {
			return nil, fmt.Errorf("agg: every span pull failed: %s", strings.Join(failed, "; "))
		}
		return nil, nil
	}
	flows, _, err := obs.AssembleSpans(spans)
	if err != nil {
		return nil, fmt.Errorf("agg: assembling trace %s: %w", id, err)
	}
	if len(flows) == 0 {
		return nil, nil
	}
	ft := flows[0]
	resp := &TraceResponse{
		Trace:      ft.Trace,
		Workers:    contributed,
		PullErrors: failed,
		Spans:      len(spans),
		Orphans:    len(ft.Orphans),
		Partial:    ft.Partial,
		WallNs:     ft.WallNs,
		CritNs:     ft.CritNs,
		Offsets:    ft.Offsets,
		Stages:     ft.Stages(),
	}
	var walk func(n *obs.SpanNode, depth int)
	walk = func(n *obs.SpanNode, depth int) {
		resp.Tree = append(resp.Tree, TraceNode{
			Depth: depth, Span: n.Span,
			StartNs: n.Start, EndNs: n.End, SelfCritNs: n.SelfCritNs,
		})
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	if ft.Root != nil {
		walk(ft.Root, 0)
	}
	sort.Strings(resp.Workers)
	return resp, nil
}
