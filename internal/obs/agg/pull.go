// The span pull client: fetches flight-recorder spans from a live
// worker's debug endpoints (obs.Recorder.Mount). Shared by the
// /cluster/trace assembler and bbtrace -from-url, so both tools speak
// the same JSONL wire form (obs.ReadSpans) against the same endpoints.

package agg

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/obs"
)

// PullSpans fetches live flight-recorder spans from the worker admin
// endpoint at base: /debug/trace?id=<trace> when trace is non-empty,
// else the full /debug/spans feed. Only live flows' rings are served —
// ended flows return their rings to the pool (their spans reach a Sink
// via head/tail delivery instead). A 200 with an empty body yields an
// empty slice, not an error.
func PullSpans(c *http.Client, base, trace string) ([]obs.Span, error) {
	if c == nil {
		c = http.DefaultClient
	}
	u := strings.TrimRight(base, "/")
	if trace == "" {
		u += "/debug/spans"
	} else {
		u += "/debug/trace?id=" + url.QueryEscape(trace)
	}
	resp, err := c.Get(u)
	if err != nil {
		return nil, err
	}
	defer func() {
		//lint:ignore unchecked-err drain-and-close of a pull body; the parse result is what matters
		io.Copy(io.Discard, resp.Body)
		//lint:ignore unchecked-err see above
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("agg: %s: status %s", u, resp.Status)
	}
	spans, err := obs.ReadSpans(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("agg: %s: %w", u, err)
	}
	return spans, nil
}
