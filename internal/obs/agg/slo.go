// Declarative SLO evaluation over scraped worker metrics. An SLO is a
// (kind, metric, threshold) triple evaluated against the fleet-merged
// latest snapshots: a histogram quantile bound (p99 scan latency), a
// cumulative budget (unscanned bytes), or a counter ratio (connection
// error rate). Every kind is computable from one scrape round, so
// `bbfleet -check` needs exactly one round before flipping its exit
// code; continuous runs re-evaluate per render and export the verdicts
// as blindbox_fleet_slo_up / blindbox_fleet_slo_breaches_total.

package agg

import (
	"encoding/json"
	"fmt"
	"math"
)

// JSONFloat is a float64 whose JSON encoding tolerates the non-finite
// values SLO evaluation produces (null for NaN, quoted "+Inf"/"-Inf"),
// which encoding/json otherwise refuses to marshal.
type JSONFloat float64

// MarshalJSON implements json.Marshaler.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte("null"), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// SLOKind selects how an SLO's value is computed.
type SLOKind string

// The SLO kinds.
const (
	// SLOQuantileMax bounds a histogram quantile: Quantile of the
	// fleet-merged Metric histogram must be <= Threshold.
	SLOQuantileMax SLOKind = "quantile_max"
	// SLOTotalMax bounds a cumulative budget: the fleet sum of the
	// Metric counter/gauge must be <= Threshold.
	SLOTotalMax SLOKind = "total_max"
	// SLORatioMax bounds an error rate: fleet sum of Metric divided by
	// fleet sum of Denom must be <= Threshold (0/0 counts as 0).
	SLORatioMax SLOKind = "ratio_max"
)

// SLO is one declared service-level objective.
type SLO struct {
	// Name labels the objective (the slo label value), e.g. "scan_p99".
	Name string `json:"name"`
	// Kind selects the evaluation rule.
	Kind SLOKind `json:"kind"`
	// Metric is the scraped family the objective reads.
	Metric string `json:"metric"`
	// Denom is the denominator family (SLORatioMax only).
	Denom string `json:"denom,omitempty"`
	// Quantile is the quantile in (0,1) (SLOQuantileMax only).
	Quantile float64 `json:"quantile,omitempty"`
	// Threshold is the bound the computed value must not exceed.
	Threshold float64 `json:"threshold"`
}

// SLOResult is one evaluated objective.
type SLOResult struct {
	SLO
	// Value is the computed quantity (NaN when no worker exposed the
	// metric yet — which evaluates as met, not breached: an idle fleet
	// has no latency to bound).
	Value JSONFloat `json:"value"`
	// OK reports whether the objective held.
	OK bool `json:"ok"`
	// Workers counts the snapshots that contributed to Value.
	Workers int `json:"workers"`
}

// DefaultSLOs returns the stock objectives: p99 scan latency under
// 100 ms, a zero unscanned-bytes budget, connection error rate under
// 5%, and a zero fail-closed drop budget. cmd/bbfleet exposes knobs for
// each threshold (negative disables the objective).
func DefaultSLOs() []SLO {
	return []SLO{
		{Name: "scan_p99", Kind: SLOQuantileMax, Metric: "blindbox_mb_scan_seconds", Quantile: 0.99, Threshold: 0.1},
		{Name: "unscanned_bytes", Kind: SLOTotalMax, Metric: "blindbox_mb_unscanned_bytes_total", Threshold: 0},
		{Name: "conn_error_ratio", Kind: SLORatioMax, Metric: "blindbox_mb_conn_errors_total", Denom: "blindbox_mb_connections_total", Threshold: 0.05},
		{Name: "failclosed_drops", Kind: SLOTotalMax, Metric: "blindbox_mb_failclosed_drops_total", Threshold: 0},
	}
}

// EvaluateSLOs computes every objective against the latest exposition
// per worker. Unknown kinds evaluate as breached (a typo'd declaration
// must not silently pass).
func EvaluateSLOs(slos []SLO, expos map[string]*Exposition) []SLOResult {
	out := make([]SLOResult, 0, len(slos))
	for _, slo := range slos {
		out = append(out, evaluateSLO(slo, expos))
	}
	return out
}

// evaluateSLO computes one objective.
func evaluateSLO(slo SLO, expos map[string]*Exposition) SLOResult {
	res := SLOResult{SLO: slo}
	value := math.NaN()
	switch slo.Kind {
	case SLOQuantileMax:
		var merged *Hist
		for _, name := range sortedKeys(expos) {
			h, ok := expos[name].Histogram(slo.Metric)
			if !ok {
				continue
			}
			res.Workers++
			if merged == nil {
				merged = h.Clone()
				continue
			}
			if err := merged.Merge(h); err != nil {
				// Bound skew across workers: evaluate conservatively as
				// a breach and surface the reason in the value.
				res.OK = false
				res.Value = JSONFloat(math.Inf(1))
				return res
			}
		}
		if merged != nil && merged.Count > 0 {
			value = merged.Quantile(slo.Quantile)
		}
	case SLOTotalMax:
		value, res.Workers = fleetSum(slo.Metric, expos)
	case SLORatioMax:
		num, n := fleetSum(slo.Metric, expos)
		den, _ := fleetSum(slo.Denom, expos)
		res.Workers = n
		switch {
		case den > 0:
			value = num / den
		case num > 0:
			value = math.Inf(1)
		default:
			value = 0
		}
	default:
		res.Value = JSONFloat(math.Inf(1))
		res.OK = false
		return res
	}
	// NaN (no data) evaluates as met: an unexercised objective is not a
	// breach. Everything else is a plain threshold comparison.
	res.Value = JSONFloat(value)
	res.OK = math.IsNaN(value) || value <= slo.Threshold
	return res
}

// fleetSum sums one scalar family across workers, counting contributors.
func fleetSum(metric string, expos map[string]*Exposition) (float64, int) {
	var total float64
	n := 0
	for _, name := range sortedKeys(expos) {
		if v, ok := expos[name].Value(metric); ok {
			total += v
			n++
		}
	}
	return total, n
}

// String renders the objective compactly for -check output.
func (r SLOResult) String() string {
	verdict := "ok"
	if !r.OK {
		verdict = "BREACH"
	}
	return fmt.Sprintf("%-18s %-12s value=%g threshold=%g workers=%d %s",
		r.Name, string(r.Kind), float64(r.Value), r.Threshold, r.Workers, verdict)
}
