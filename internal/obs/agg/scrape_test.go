package agg

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/retry"
)

// fakeClock is an injectable clock for staleness-aging tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// workerFixture is one fake worker: a live registry behind a real
// admin mux.
type workerFixture struct {
	reg *obs.Registry
	srv *httptest.Server
}

func newWorkerFixture(t *testing.T) *workerFixture {
	t.Helper()
	reg := obs.NewRegistry()
	srv := httptest.NewServer(obs.AdminMux(reg))
	t.Cleanup(srv.Close)
	return &workerFixture{reg: reg, srv: srv}
}

// quickRetry is a fast, single-attempt policy for failure tests.
var quickRetry = retry.Policy{Attempts: 1, Base: time.Millisecond, Max: time.Millisecond}

func TestScraperRatesAndStates(t *testing.T) {
	w := newWorkerFixture(t)
	tokens := w.reg.Counter(obs.MBTokensScannedTotal, "t")
	alerts := w.reg.Counter(obs.MBAlertsTotal, "a")
	depth := w.reg.GaugeVec(obs.MBShardQueueDepth, "d", "shard")
	degraded := w.reg.Counter(obs.MBDegradedTotal, "g")
	tokens.Add(1000)
	depth.With("0").Set(3)
	depth.With("1").Set(4)

	clock := newFakeClock()
	s, err := New(Config{
		Targets:  []Target{{Name: "w1", URL: w.srv.URL}},
		Interval: time.Second,
		Retry:    quickRetry,
		Metrics:  obs.NewRegistry(),
		Now:      clock.Now,
		Client:   w.srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}

	if err := s.ScrapeOnce(nil); err != nil {
		t.Fatalf("first scrape: %v", err)
	}
	h := s.Workers()[0]
	if h.State != StateUp {
		t.Fatalf("state after first scrape = %s, want up", h.State)
	}
	if h.Rates.TokensScanned != 1000 || h.Rates.QueueDepth != 7 {
		t.Fatalf("totals = %+v", h.Rates)
	}
	if h.Rates.TokensPerSec != 0 {
		t.Fatalf("rates from a single snapshot should be 0, got %+v", h.Rates)
	}

	// One interval later: 500 more tokens, 5 alerts -> windowed rates.
	clock.Advance(time.Second)
	tokens.Add(500)
	alerts.Add(5)
	if err := s.ScrapeOnce(nil); err != nil {
		t.Fatal(err)
	}
	h = s.Workers()[0]
	if h.State != StateUp {
		t.Fatalf("state = %s, want up", h.State)
	}
	if h.Rates.TokensPerSec != 500 || h.Rates.AlertsPerSec != 5 {
		t.Fatalf("rates = %+v, want 500 tokens/s, 5 alerts/s", h.Rates)
	}

	// Degradation counters moving flips the state to degraded.
	clock.Advance(time.Second)
	degraded.Inc()
	if err := s.ScrapeOnce(nil); err != nil {
		t.Fatal(err)
	}
	if h = s.Workers()[0]; h.State != StateDegraded {
		t.Fatalf("state = %s, want degraded", h.State)
	}
}

func TestScraperWorkerDownMidScrapeAndAging(t *testing.T) {
	w := newWorkerFixture(t)
	w.reg.Counter(obs.MBConnectionsTotal, "c").Add(2)

	clock := newFakeClock()
	s, err := New(Config{
		Targets:    []Target{{Name: "w1", URL: w.srv.URL}},
		Interval:   time.Second,
		StaleAfter: 3 * time.Second,
		DownAfter:  10 * time.Second,
		Retry:      quickRetry,
		Metrics:    obs.NewRegistry(),
		Now:        clock.Now,
		Client:     w.srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ScrapeOnce(nil); err != nil {
		t.Fatal(err)
	}

	// Kill the worker; the next round must fail without losing the
	// retained snapshot, and the state must age up -> stale -> down.
	w.srv.Close()
	clock.Advance(time.Second)
	if err := s.ScrapeOnce(nil); err == nil {
		t.Fatal("scrape of a dead worker succeeded")
	}
	h := s.Workers()[0]
	if h.State != StateUp {
		t.Fatalf("state right after failure = %s, want up (snapshot still fresh)", h.State)
	}
	if h.LastError == "" || h.Errors != 1 || h.Scrapes != 1 {
		t.Fatalf("health = %+v", h)
	}
	if h.Rates.Connections != 2 {
		t.Fatalf("retained totals lost: %+v", h.Rates)
	}

	clock.Advance(3 * time.Second) // age 4s > StaleAfter
	if h = s.Workers()[0]; h.State != StateStale {
		t.Fatalf("state at 4s = %s, want stale", h.State)
	}
	clock.Advance(7 * time.Second) // age 11s > DownAfter
	if h = s.Workers()[0]; h.State != StateDown {
		t.Fatalf("state at 11s = %s, want down", h.State)
	}

	// A down worker fails the fleet check even with every SLO met.
	rep := s.Check()
	if rep.OK {
		t.Fatal("Check().OK with a down worker")
	}
}

func TestScraperRejectsGarbageAndTruncatedBodies(t *testing.T) {
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		//lint:ignore unchecked-err test server write
		w.Write([]byte("\x00\x01 not an exposition"))
	}))
	defer garbage.Close()
	truncated := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		//lint:ignore unchecked-err test server write
		w.Write([]byte("blindbox_mb_connections_total 4\nblindbox_mb_conn"))
	}))
	defer truncated.Close()
	errorcode := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "no", http.StatusInternalServerError)
	}))
	defer errorcode.Close()

	s, err := New(Config{
		Targets: []Target{
			{Name: "garbage", URL: garbage.URL},
			{Name: "truncated", URL: truncated.URL},
			{Name: "errorcode", URL: errorcode.URL},
		},
		Retry:   quickRetry,
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ScrapeOnce(nil); err == nil {
		t.Fatal("scrape of garbage workers succeeded")
	}
	for _, h := range s.Workers() {
		if h.State != StateDown || h.Scrapes != 0 || h.Errors != 1 || h.LastError == "" {
			t.Errorf("%s: health = %+v, want down with one recorded error", h.Name, h)
		}
	}
}

func TestScrapeRetryRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter(obs.MBConnectionsTotal, "c").Add(1)
	var mu sync.Mutex
	fails := 1
	mux := obs.AdminMux(reg)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		f := fails
		fails--
		mu.Unlock()
		if f > 0 {
			http.Error(w, "flaky", http.StatusServiceUnavailable)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	defer srv.Close()

	s, err := New(Config{
		Targets: []Target{{Name: "flaky", URL: srv.URL}},
		Retry:   retry.Policy{Attempts: 3, Base: time.Millisecond, Max: time.Millisecond, Seed: 1},
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ScrapeOnce(nil); err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	h := s.Workers()[0]
	if h.State != StateUp || h.Scrapes != 1 || h.Errors != 0 {
		t.Fatalf("health = %+v", h)
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted zero targets")
	}
	if _, err := New(Config{Targets: []Target{{Name: "fleet", URL: "http://x"}}}); err == nil {
		t.Error("New accepted the reserved worker name")
	}
	if _, err := New(Config{Targets: []Target{
		{Name: "a", URL: "http://x"}, {Name: "a", URL: "http://y"},
	}}); err == nil {
		t.Error("New accepted duplicate worker names")
	}
	s, err := New(Config{Targets: []Target{{URL: "http://127.0.0.1:9001"}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.workerNames()[0]; got != "127.0.0.1:9001" {
		t.Errorf("derived worker name = %q", got)
	}
}

// TestScraperSelfMetrics pins the scraper's own catalog registrations:
// scrape counts, error counts, the up gauge and staleness.
func TestScraperSelfMetrics(t *testing.T) {
	w := newWorkerFixture(t)
	reg := obs.NewRegistry()
	clock := newFakeClock()
	s, err := New(Config{
		Targets: []Target{{Name: "w1", URL: w.srv.URL}},
		Retry:   quickRetry,
		Metrics: reg,
		Now:     clock.Now,
		Client:  w.srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ScrapeOnce(nil); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	expo, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v := expo.Labeled(obs.FleetScrapesTotal)["w1"]; v != 1 {
		t.Errorf("scrapes{w1} = %v, want 1", v)
	}
	if v := expo.Labeled(obs.FleetWorkerUp)["w1"]; v != 1 {
		t.Errorf("worker_up{w1} = %v, want 1", v)
	}
	if h, ok := expo.Histogram(obs.FleetScrapeSeconds); !ok || h.Count != 1 {
		t.Errorf("scrape_seconds count = %+v, %v", h, ok)
	}

	// Fail a round: the error counter moves and the up gauge drops once
	// the snapshot ages out.
	w.srv.Close()
	clock.Advance(time.Minute)
	//lint:ignore unchecked-err the error path is the point
	s.ScrapeOnce(nil)
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	expo, err = Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v := expo.Labeled(obs.FleetScrapeErrorsTotal)["w1"]; v != 1 {
		t.Errorf("scrape_errors{w1} = %v, want 1", v)
	}
	if v := expo.Labeled(obs.FleetWorkerUp)["w1"]; v != 0 {
		t.Errorf("worker_up{w1} = %v, want 0", v)
	}
	if v := expo.Labeled(obs.FleetStalenessSeconds)["w1"]; v < 59 {
		t.Errorf("staleness{w1} = %v, want >= 59", v)
	}
}
