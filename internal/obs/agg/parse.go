// Prometheus text-format (0.0.4) parsing: the inverse of
// obs.Registry.WritePrometheus. The fleet scraper lives and dies by this
// symmetry — TestRoundTrip pins that Registry → WritePrometheus →
// Parse → JSONSnapshot reproduces Registry.Snapshot exactly for every
// metric family in the catalog, so a format drift on either side fails
// the build gate rather than silently corrupting fleet rollups.
//
// The parser is stdlib-only and deliberately small: HELP/TYPE comment
// lines, samples with an optional label set and an optional timestamp,
// and histogram reconstruction from the _bucket/_sum/_count series. It
// accepts any well-formed exposition (multi-label samples included, as
// /cluster/metrics itself emits a worker label on top of existing
// labels); it errors on the first malformed line so a truncated or
// garbage scrape body is rejected instead of half-ingested.

package agg

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// ParseError reports the first malformed line of an exposition body.
type ParseError struct {
	// Line is the 1-based line number of the offending line.
	Line int
	// Text is the offending line (truncated for display).
	Text string
	// Reason says what failed to parse.
	Reason string
}

// Error implements error.
func (e *ParseError) Error() string {
	t := e.Text
	if len(t) > 80 {
		t = t[:80] + "…"
	}
	return fmt.Sprintf("agg: exposition line %d: %s (%q)", e.Line, e.Reason, t)
}

// Sample is one series line of a family.
type Sample struct {
	// Suffix distinguishes histogram sub-series: "" for a family's own
	// samples, "_bucket", "_sum" or "_count".
	Suffix string
	// Labels holds the sample's label pairs (nil when unlabeled). For
	// _bucket samples the set includes le.
	Labels map[string]string
	// Value is the parsed sample value.
	Value float64
}

// Family is one metric family: the HELP/TYPE declaration plus its
// samples in body order.
type Family struct {
	// Name is the family name (without histogram suffixes).
	Name string
	// Help is the unescaped HELP text ("" when absent).
	Help string
	// Type is the declared TYPE: "counter", "gauge", "histogram",
	// "summary" or "untyped" (the default when no TYPE line appeared).
	Type string
	// Samples are the family's series in body order.
	Samples []Sample
}

// Exposition is one parsed scrape body: families in body order.
type Exposition struct {
	// Families lists the families in first-appearance order.
	Families []*Family

	byName map[string]*Family
}

// Family returns the named family, nil when absent.
func (e *Exposition) Family(name string) *Family {
	if e == nil {
		return nil
	}
	return e.byName[name]
}

// Parse reads a Prometheus text-format (0.0.4) body. It returns a
// *ParseError describing the first malformed line — a truncated body
// that cuts mid-line fails here rather than yielding torn samples.
func Parse(r io.Reader) (*Exposition, error) {
	e := &Exposition{byName: map[string]*Family{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := e.parseComment(line, lineNo); err != nil {
				return nil, err
			}
			continue
		}
		if err := e.parseSample(line, lineNo); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("agg: reading exposition: %w", err)
	}
	return e, nil
}

// family returns the named family, creating an untyped one on first use.
func (e *Exposition) family(name string) *Family {
	if f, ok := e.byName[name]; ok {
		return f
	}
	f := &Family{Name: name, Type: "untyped"}
	e.byName[name] = f
	e.Families = append(e.Families, f)
	return f
}

// parseComment handles "# HELP name text" and "# TYPE name kind";
// any other comment is ignored per the format.
func (e *Exposition) parseComment(line string, lineNo int) error {
	rest := strings.TrimPrefix(line, "#")
	rest = strings.TrimLeft(rest, " ")
	var keyword string
	switch {
	case strings.HasPrefix(rest, "HELP "):
		keyword, rest = "HELP", rest[len("HELP "):]
	case strings.HasPrefix(rest, "TYPE "):
		keyword, rest = "TYPE", rest[len("TYPE "):]
	default:
		return nil
	}
	name, tail, _ := strings.Cut(rest, " ")
	if !validName(name) {
		return &ParseError{Line: lineNo, Text: line, Reason: "bad metric name in " + keyword}
	}
	f := e.family(name)
	if keyword == "HELP" {
		f.Help = unescapeHelp(tail)
		return nil
	}
	switch tail {
	case "counter", "gauge", "histogram", "summary", "untyped":
		f.Type = tail
	default:
		return &ParseError{Line: lineNo, Text: line, Reason: "unknown TYPE " + strconv.Quote(tail)}
	}
	return nil
}

// parseSample handles one sample line: name[{labels}] value [timestamp].
func (e *Exposition) parseSample(line string, lineNo int) error {
	fail := func(reason string) error {
		return &ParseError{Line: lineNo, Text: line, Reason: reason}
	}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return fail("expected metric name")
	}
	name, rest := line[:i], line[i:]

	var labels map[string]string
	if strings.HasPrefix(rest, "{") {
		var err error
		labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return fail(err.Error())
		}
	}
	rest = strings.TrimLeft(rest, " \t")
	if rest == "" {
		return fail("missing sample value")
	}
	valStr, _, _ := strings.Cut(rest, " ") // optional timestamp ignored
	val, err := parseValue(valStr)
	if err != nil {
		return fail("bad sample value " + strconv.Quote(valStr))
	}

	fam, suffix := e.resolve(name)
	fam.Samples = append(fam.Samples, Sample{Suffix: suffix, Labels: labels, Value: val})
	return nil
}

// resolve maps a sample name to its family: an exact declared name, a
// histogram/summary sub-series of a declared family, or a fresh untyped
// family.
func (e *Exposition) resolve(name string) (*Family, string) {
	if f, ok := e.byName[name]; ok {
		return f, ""
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if f, have := e.byName[base]; have {
			if f.Type == "histogram" || (f.Type == "summary" && suffix != "_bucket") {
				return f, suffix
			}
		}
	}
	return e.family(name), ""
}

// parseLabels consumes `key="value",...}` (opening brace already eaten)
// and returns the label map plus the unconsumed remainder of the line.
func parseLabels(s string) (map[string]string, string, error) {
	labels := map[string]string{}
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		i := 0
		for i < len(s) && isNameChar(s[i], i == 0) {
			i++
		}
		if i == 0 {
			return nil, "", fmt.Errorf("expected label name")
		}
		key := s[:i]
		s = s[i:]
		if !strings.HasPrefix(s, "=") {
			return nil, "", fmt.Errorf("expected = after label %s", key)
		}
		s = s[1:]
		val, rest, err := parseQuoted(s)
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %w", key, err)
		}
		labels[key] = val
		s = rest
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		return nil, "", fmt.Errorf("expected , or } after label %s", key)
	}
}

// parseQuoted consumes a double-quoted label value with the exposition
// escapes (\\, \", \n — plus \t, which fmt %q emits) and returns the
// unescaped value and the remainder.
func parseQuoted(s string) (string, string, error) {
	if !strings.HasPrefix(s, `"`) {
		return "", "", fmt.Errorf("expected quoted value")
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i == len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default: // \\ and \" and anything else verbatim
				b.WriteByte(s[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}

// parseValue parses a sample value: any float, plus the exposition
// spellings +Inf/-Inf/NaN.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validName reports whether s matches the Prometheus metric/label name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// unescapeHelp undoes obs.escapeHelp: \n and \\ escapes.
func unescapeHelp(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			if s[i] == 'n' {
				b.WriteByte('\n')
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// Value returns the value of the family's single unlabeled sample —
// scalar counters and gauges as WritePrometheus emits them.
func (f *Family) Value() (float64, bool) {
	if f == nil {
		return 0, false
	}
	for _, s := range f.Samples {
		if s.Suffix == "" && len(s.Labels) == 0 {
			return s.Value, true
		}
	}
	return 0, false
}

// With returns the value of the sample whose label set matches exactly.
func (f *Family) With(labels map[string]string) (float64, bool) {
	if f == nil {
		return 0, false
	}
	for _, s := range f.Samples {
		if s.Suffix != "" || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Value is shorthand for Family(name).Value(): the unlabeled scalar.
func (e *Exposition) Value(name string) (float64, bool) {
	return e.Family(name).Value()
}

// Labeled returns a one-label family's values keyed by its label value
// (the inverse of CounterVec/GaugeVec.Values). Nil when the family is
// absent or has no labeled samples.
func (e *Exposition) Labeled(name string) map[string]float64 {
	f := e.Family(name)
	if f == nil {
		return nil
	}
	var out map[string]float64
	for _, s := range f.Samples {
		if s.Suffix != "" || len(s.Labels) != 1 {
			continue
		}
		for _, v := range s.Labels {
			if out == nil {
				out = map[string]float64{}
			}
			out[v] = s.Value
		}
	}
	return out
}

// Hist is a reconstructed fixed-bucket cumulative histogram.
type Hist struct {
	// Bounds are the finite upper bounds, ascending; an implicit +Inf
	// bucket follows.
	Bounds []float64
	// Cum are the cumulative bucket counts, len(Bounds)+1, the last
	// being the +Inf bucket (== Count for a well-formed histogram).
	Cum []uint64
	// Sum is the _sum series value; Count the _count series value.
	Sum   float64
	Count uint64

	// les keeps the raw le strings aligned with Cum, so JSONSnapshot
	// reproduces Registry.Snapshot's bucket keys byte-for-byte.
	les []string
}

// Histogram reconstructs the family's unlabeled histogram (ignoring any
// labels beyond le). False when the family declares no histogram TYPE
// or carries no bucket samples.
func (e *Exposition) Histogram(name string) (*Hist, bool) {
	return e.Family(name).Histogram(nil)
}

// Histogram reconstructs the histogram whose non-le labels match extra
// exactly (nil for the unlabeled histogram a worker exposes; a worker
// label for /cluster/metrics re-parses).
func (f *Family) Histogram(extra map[string]string) (*Hist, bool) {
	if f == nil || f.Type != "histogram" {
		return nil, false
	}
	match := func(labels map[string]string, wantLe bool) (string, bool) {
		le, hasLe := labels["le"]
		if hasLe != wantLe {
			return "", false
		}
		if len(labels)-boolToInt(hasLe) != len(extra) {
			return "", false
		}
		for k, v := range extra {
			if labels[k] != v {
				return "", false
			}
		}
		return le, true
	}
	type bucket struct {
		le  string
		val float64
		cum uint64
	}
	var buckets []bucket
	h := &Hist{}
	seen := false
	for _, s := range f.Samples {
		switch s.Suffix {
		case "_bucket":
			if le, ok := match(s.Labels, true); ok {
				v, err := parseValue(le)
				if err != nil {
					return nil, false
				}
				buckets = append(buckets, bucket{le: le, val: v, cum: uint64(s.Value)})
				seen = true
			}
		case "_sum":
			if _, ok := match(s.Labels, false); ok {
				h.Sum = s.Value
				seen = true
			}
		case "_count":
			if _, ok := match(s.Labels, false); ok {
				h.Count = uint64(s.Value)
				seen = true
			}
		}
	}
	if !seen || len(buckets) == 0 {
		return nil, false
	}
	sort.SliceStable(buckets, func(i, j int) bool { return buckets[i].val < buckets[j].val })
	for _, b := range buckets {
		if !math.IsInf(b.val, 1) {
			h.Bounds = append(h.Bounds, b.val)
		}
		h.les = append(h.les, b.le)
		h.Cum = append(h.Cum, b.cum)
	}
	return h, true
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Quantile estimates the q-quantile (q in [0,1]) the way Prometheus's
// histogram_quantile does: linear interpolation inside the first bucket
// whose cumulative count reaches q*Count, the highest finite bound when
// that bucket is +Inf. NaN for an empty histogram.
func (h *Hist) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 || len(h.Cum) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	for i, cum := range h.Cum {
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.Bounds) { // +Inf bucket
			if len(h.Bounds) == 0 {
				return math.NaN()
			}
			return h.Bounds[len(h.Bounds)-1]
		}
		lower, lowerCum := 0.0, uint64(0)
		if i > 0 {
			lower, lowerCum = h.Bounds[i-1], h.Cum[i-1]
		}
		width := float64(cum - lowerCum)
		if width == 0 {
			return h.Bounds[i]
		}
		return lower + (h.Bounds[i]-lower)*(rank-float64(lowerCum))/width
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Merge adds o's buckets, sum and count into h. The bucket bounds must
// match (all workers register catalog histograms with the same bounds);
// a mismatch is an error rather than a silent skew.
func (h *Hist) Merge(o *Hist) error {
	if len(h.Cum) != len(o.Cum) {
		return fmt.Errorf("agg: histogram bucket count mismatch: %d vs %d", len(h.Cum), len(o.Cum))
	}
	for i, b := range h.Bounds {
		if b != o.Bounds[i] {
			return fmt.Errorf("agg: histogram bound mismatch at %d: %g vs %g", i, b, o.Bounds[i])
		}
	}
	for i := range h.Cum {
		h.Cum[i] += o.Cum[i]
	}
	h.Sum += o.Sum
	h.Count += o.Count
	return nil
}

// Clone returns a deep copy of h (Merge mutates its receiver).
func (h *Hist) Clone() *Hist {
	c := &Hist{Sum: h.Sum, Count: h.Count}
	c.Bounds = append(c.Bounds, h.Bounds...)
	c.Cum = append(c.Cum, h.Cum...)
	c.les = append(c.les, h.les...)
	return c
}

// JSONSnapshot renders the exposition in obs.Registry.Snapshot's shape:
// scalars as numbers, labeled one-label families as label-value maps,
// histograms as obs.HistogramSnapshot. For a body produced by
// WritePrometheus the JSON encoding of the two snapshots is identical —
// the round-trip contract TestRoundTrip pins. A declared counter/gauge
// family with no samples renders as an empty map (WritePrometheus only
// omits samples for childless vecs; plain counters and gauges always
// emit one).
func (e *Exposition) JSONSnapshot() map[string]any {
	if e == nil {
		return nil
	}
	out := make(map[string]any, len(e.Families))
	for _, f := range e.Families {
		if f.Type == "histogram" {
			if h, ok := f.Histogram(nil); ok {
				buckets := make(map[string]uint64, len(h.Cum))
				for i, le := range h.les {
					key := le
					if math.IsInf(mustParseValue(le), 1) {
						key = "+Inf"
					}
					buckets[key] = h.Cum[i]
				}
				out[f.Name] = obs.HistogramSnapshot{Buckets: buckets, Sum: h.Sum, Count: h.Count}
			}
			continue
		}
		if v, ok := f.Value(); ok {
			out[f.Name] = v
			continue
		}
		m := map[string]float64{}
		for k, v := range e.Labeled(f.Name) {
			m[k] = v
		}
		out[f.Name] = m
	}
	return out
}

// mustParseValue is parseValue for strings the parser already accepted.
func mustParseValue(s string) float64 {
	v, err := parseValue(s)
	if err != nil {
		return math.NaN()
	}
	return v
}
