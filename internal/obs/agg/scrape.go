// The multi-target scraper: polls every worker admin endpoint on an
// interval with a per-target timeout and a bounded jittered retry
// (internal/retry), keeps the last K parsed snapshots per worker,
// derives rates from the deltas, and classifies each worker
// up / stale / degraded / down. The scraper watches itself through the
// blindbox_fleet_* catalog metrics registered on Config.Metrics — the
// same registry the cluster mux exposes on /metrics.
//
// Secrecy note (bblint secret-flow): the scraper only ever handles
// metric names, label values and numbers from /metrics bodies — no
// session keys, rule plaintext or payload bytes flow through this
// package, and nothing scraped is ever interpreted as a secret.

package agg

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/retry"
)

// Defaults for Config's zero fields.
const (
	// DefaultInterval is the scrape period.
	DefaultInterval = time.Second
	// DefaultTimeout is the per-target HTTP timeout for one attempt.
	DefaultTimeout = 2 * time.Second
	// DefaultKeep is how many parsed snapshots are retained per worker
	// (the rate window is oldest-to-newest over these).
	DefaultKeep = 8
)

// FleetLabel is the reserved worker-label value carried by the rollup
// series on /cluster/metrics. Config validation rejects a worker named
// this.
const FleetLabel = "fleet"

// Target is one worker admin endpoint to scrape.
type Target struct {
	// Name is the worker's fleet-wide name (the worker label value).
	// Empty derives a name from the URL.
	Name string
	// URL is the admin base, e.g. "http://127.0.0.1:9001"; the scraper
	// appends /metrics, /debug/trace and friends.
	URL string
}

// Config configures a Scraper. The zero value is not usable: at least
// one Target is required.
type Config struct {
	// Targets are the workers to scrape.
	Targets []Target
	// Interval is the scrape period (default DefaultInterval).
	Interval time.Duration
	// Timeout bounds one HTTP attempt per target (default
	// DefaultTimeout).
	Timeout time.Duration
	// Keep is the per-worker snapshot retention (default DefaultKeep).
	Keep int
	// Retry bounds the per-round attempts against one target; the zero
	// value is retry.Policy's documented default (3 attempts, jittered
	// exponential backoff).
	Retry retry.Policy
	// StaleAfter classifies a worker stale when its last successful
	// scrape is older than this (default 3×Interval).
	StaleAfter time.Duration
	// DownAfter classifies a worker down when its last successful
	// scrape is older than this (default 10×Interval).
	DownAfter time.Duration
	// Metrics receives the blindbox_fleet_* scraper self-metrics; nil
	// disables them.
	Metrics *obs.Registry
	// SLOs are the declared service-level objectives Check evaluates
	// (nil: DefaultSLOs).
	SLOs []SLO
	// Client overrides the HTTP client (tests); nil builds one from
	// Timeout.
	Client *http.Client
	// Now overrides the clock (tests); nil uses time.Now.
	Now func() time.Time
}

// WorkerState classifies one worker's health as seen by the scraper.
type WorkerState string

// The worker states, from healthy to unreachable.
const (
	// StateUp: scraped recently, no degradation observed in the window.
	StateUp WorkerState = "up"
	// StateDegraded: scraped recently, but the window shows fail-open
	// degradation, fail-closed drops, unscanned bytes or connection
	// errors accumulating.
	StateDegraded WorkerState = "degraded"
	// StateStale: last successful scrape older than StaleAfter.
	StateStale WorkerState = "stale"
	// StateDown: never scraped, or last success older than DownAfter.
	StateDown WorkerState = "down"
)

// Rates are the per-worker derived quantities: windowed rates from the
// retained snapshot deltas plus the load-bearing instantaneous totals.
type Rates struct {
	// TokensPerSec is the detection token rate over the window.
	TokensPerSec float64 `json:"tokens_per_sec"`
	// AlertsPerSec is the detection-event rate over the window.
	AlertsPerSec float64 `json:"alerts_per_sec"`
	// ConnsPerSec is the admitted-connection rate over the window.
	ConnsPerSec float64 `json:"conns_per_sec"`
	// DegradedPerSec is the fail-open degradation rate over the window.
	DegradedPerSec float64 `json:"degraded_per_sec"`
	// FailClosedPerSec is the fail-closed drop rate over the window.
	FailClosedPerSec float64 `json:"failclosed_per_sec"`
	// QueueDepth sums the per-shard detection queue gauges (latest).
	QueueDepth int64 `json:"queue_depth"`
	// Connections, TokensScanned, Alerts and UnscannedBytes are the
	// latest cumulative totals (process lifetime).
	Connections    float64 `json:"connections_total"`
	TokensScanned  float64 `json:"tokens_scanned_total"`
	Alerts         float64 `json:"alerts_total"`
	UnscannedBytes float64 `json:"unscanned_bytes_total"`
}

// WorkerHealth is one row of /cluster/workers and the bbfleet views.
type WorkerHealth struct {
	// Name is the worker's fleet-wide name.
	Name string `json:"name"`
	// URL is the scraped admin base.
	URL string `json:"url"`
	// State is the up/stale/degraded/down classification.
	State WorkerState `json:"state"`
	// LastScrapeUnixNs is the wall-clock of the last successful scrape
	// (0: never scraped).
	LastScrapeUnixNs int64 `json:"last_scrape_unix_ns,omitempty"`
	// StalenessSeconds is the age of the last successful scrape.
	StalenessSeconds float64 `json:"staleness_seconds"`
	// LastError is the last scrape round's failure ("" after success).
	LastError string `json:"last_error,omitempty"`
	// Scrapes and Errors count successful scrapes and failed rounds.
	Scrapes uint64 `json:"scrapes"`
	Errors  uint64 `json:"errors"`
	// Rates are the worker's derived quantities.
	Rates Rates `json:"rates"`
}

// timedSnapshot is one parsed scrape with its receive time.
type timedSnapshot struct {
	at   time.Time
	expo *Exposition
}

// worker is the scraper's per-target state.
type worker struct {
	name, url string

	scrapes   *obs.Counter
	errsTotal *obs.Counter
	upGauge   *obs.Gauge
	staleness *obs.Gauge

	mu          sync.Mutex
	snaps       []timedSnapshot // oldest first, bounded by Keep
	lastSuccess time.Time
	lastErr     string
	nScrapes    uint64
	nErrors     uint64
}

// Scraper polls the configured workers and aggregates their state. All
// methods are safe for concurrent use; Run drives periodic scraping,
// ScrapeOnce performs a single round (bbfleet -check).
type Scraper struct {
	cfg    Config
	client *http.Client
	now    func() time.Time
	slos   []SLO

	workers []*worker
	byName  map[string]*worker

	scrapeSeconds *obs.Histogram
	sloUp         *obs.GaugeVec
	sloBreaches   *obs.CounterVec
}

// New validates cfg and builds a Scraper.
func New(cfg Config) (*Scraper, error) {
	if len(cfg.Targets) == 0 {
		return nil, errors.New("agg: no scrape targets")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.Keep <= 0 {
		cfg.Keep = DefaultKeep
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 3 * cfg.Interval
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 10 * cfg.Interval
	}
	if cfg.SLOs == nil {
		cfg.SLOs = DefaultSLOs()
	}
	s := &Scraper{
		cfg:    cfg,
		client: cfg.Client,
		now:    cfg.Now,
		slos:   cfg.SLOs,
		byName: map[string]*worker{},
	}
	if s.client == nil {
		s.client = &http.Client{Timeout: cfg.Timeout}
	}
	if s.now == nil {
		s.now = time.Now
	}
	m := cfg.Metrics
	scrapesVec := m.CounterVec(obs.FleetScrapesTotal, obs.Help(obs.FleetScrapesTotal), "worker")
	errsVec := m.CounterVec(obs.FleetScrapeErrorsTotal, obs.Help(obs.FleetScrapeErrorsTotal), "worker")
	upVec := m.GaugeVec(obs.FleetWorkerUp, obs.Help(obs.FleetWorkerUp), "worker")
	staleVec := m.GaugeVec(obs.FleetStalenessSeconds, obs.Help(obs.FleetStalenessSeconds), "worker")
	s.scrapeSeconds = m.Histogram(obs.FleetScrapeSeconds, obs.Help(obs.FleetScrapeSeconds), obs.LatencyBuckets)
	s.sloUp = m.GaugeVec(obs.FleetSLOUp, obs.Help(obs.FleetSLOUp), "slo")
	s.sloBreaches = m.CounterVec(obs.FleetSLOBreachesTotal, obs.Help(obs.FleetSLOBreachesTotal), "slo")
	for _, t := range cfg.Targets {
		name := t.Name
		if name == "" {
			name = strings.TrimPrefix(strings.TrimPrefix(t.URL, "http://"), "https://")
		}
		if name == FleetLabel {
			return nil, fmt.Errorf("agg: worker name %q is reserved for the rollup series", FleetLabel)
		}
		if _, dup := s.byName[name]; dup {
			return nil, fmt.Errorf("agg: duplicate worker name %q", name)
		}
		w := &worker{
			name:      name,
			url:       strings.TrimRight(t.URL, "/"),
			scrapes:   scrapesVec.With(name),
			errsTotal: errsVec.With(name),
			upGauge:   upVec.With(name),
			staleness: staleVec.With(name),
		}
		s.byName[name] = w
		s.workers = append(s.workers, w)
	}
	return s, nil
}

// Interval returns the configured scrape period.
func (s *Scraper) Interval() time.Duration { return s.cfg.Interval }

// Run scrapes every Interval until stop closes. The first round fires
// immediately.
func (s *Scraper) Run(stop <-chan struct{}) {
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		//lint:ignore unchecked-err per-round scrape failures are recorded per worker and surfaced via health state
		s.ScrapeOnce(stop)
		select {
		case <-t.C:
		case <-stop:
			return
		}
	}
}

// ScrapeOnce runs one scrape round: every target in parallel, each with
// the retry budget. It returns nil when every target succeeded, else an
// error joining the per-worker failures (the round still ingested every
// success — a worker down mid-scrape only affects its own row).
func (s *Scraper) ScrapeOnce(stop <-chan struct{}) error {
	errs := make([]error, len(s.workers))
	var wg sync.WaitGroup
	for i, w := range s.workers {
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			errs[i] = s.scrapeWorker(w, stop)
		}(i, w)
	}
	wg.Wait()
	s.updateHealthMetrics()
	return errors.Join(errs...)
}

// scrapeWorker runs one worker's scrape round under the retry policy
// and ingests the result.
func (s *Scraper) scrapeWorker(w *worker, stop <-chan struct{}) error {
	var expo *Exposition
	var took time.Duration
	err := s.cfg.Retry.Do(stop, func(int) error {
		t0 := s.now()
		e, ferr := s.fetch(w.url + "/metrics")
		if ferr != nil {
			return ferr
		}
		expo, took = e, s.now().Sub(t0)
		return nil
	})
	now := s.now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		w.nErrors++
		w.lastErr = err.Error()
		w.errsTotal.Inc()
		return fmt.Errorf("worker %s: %w", w.name, err)
	}
	w.nScrapes++
	w.lastErr = ""
	w.lastSuccess = now
	w.snaps = append(w.snaps, timedSnapshot{at: now, expo: expo})
	if len(w.snaps) > s.cfg.Keep {
		w.snaps = w.snaps[len(w.snaps)-s.cfg.Keep:]
	}
	w.scrapes.Inc()
	s.scrapeSeconds.Observe(took.Seconds())
	return nil
}

// fetch GETs one exposition body and parses it.
func (s *Scraper) fetch(url string) (*Exposition, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		//lint:ignore unchecked-err drain-and-close of a scrape body; the parse result is what matters
		io.Copy(io.Discard, resp.Body)
		//lint:ignore unchecked-err see above
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("agg: %s: status %s", url, resp.Status)
	}
	return Parse(resp.Body)
}

// latest returns each worker's newest exposition (workers never scraped
// are absent), in config order.
func (s *Scraper) latest() (names []string, expos map[string]*Exposition) {
	expos = map[string]*Exposition{}
	for _, w := range s.workers {
		w.mu.Lock()
		if n := len(w.snaps); n > 0 {
			names = append(names, w.name)
			expos[w.name] = w.snaps[n-1].expo
		}
		w.mu.Unlock()
	}
	return names, expos
}

// workerNames returns every configured worker name in config order.
func (s *Scraper) workerNames() []string {
	out := make([]string, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.name
	}
	return out
}

// degradationDelta sums the degradation signals (fail-open degradations,
// fail-closed drops, unscanned bytes, connection errors) accumulated
// between two snapshots. With old == nil it returns the cumulative
// totals — right after the first scrape the whole process history is
// the window, which a restarted aggregator outgrows one interval later.
func degradationDelta(old, cur *Exposition) float64 {
	var total float64
	for _, name := range []string{
		obs.MBDegradedTotal, obs.MBFailClosedDropsTotal,
		obs.MBUnscannedBytes, obs.MBConnErrorsTotal,
	} {
		v, _ := cur.Value(name)
		if old != nil {
			o, _ := old.Value(name)
			v -= o
		}
		total += v
	}
	return total
}

// health builds one worker's row. Caller does not hold w.mu.
func (s *Scraper) health(w *worker) WorkerHealth {
	now := s.now()
	w.mu.Lock()
	defer w.mu.Unlock()
	h := WorkerHealth{
		Name:    w.name,
		URL:     w.url,
		Scrapes:   w.nScrapes,
		Errors:    w.nErrors,
		LastError: w.lastErr,
	}
	if w.lastSuccess.IsZero() {
		h.State = StateDown
		h.StalenessSeconds = -1
		return h
	}
	h.LastScrapeUnixNs = w.lastSuccess.UnixNano()
	age := now.Sub(w.lastSuccess)
	h.StalenessSeconds = age.Seconds()
	cur := w.snaps[len(w.snaps)-1].expo
	var oldest *Exposition
	var window time.Duration
	if len(w.snaps) > 1 {
		oldest = w.snaps[0].expo
		window = w.snaps[len(w.snaps)-1].at.Sub(w.snaps[0].at)
	}
	h.Rates = rates(oldest, cur, window)
	switch {
	case age > s.cfg.DownAfter:
		h.State = StateDown
	case age > s.cfg.StaleAfter:
		h.State = StateStale
	case degradationDelta(oldest, cur) > 0:
		h.State = StateDegraded
	default:
		h.State = StateUp
	}
	return h
}

// rates derives the Rates row from the oldest and newest retained
// snapshots (old nil or window 0: rates are 0, totals still filled).
func rates(old, cur *Exposition, window time.Duration) Rates {
	var r Rates
	r.Connections, _ = cur.Value(obs.MBConnectionsTotal)
	r.TokensScanned, _ = cur.Value(obs.MBTokensScannedTotal)
	r.Alerts, _ = cur.Value(obs.MBAlertsTotal)
	r.UnscannedBytes, _ = cur.Value(obs.MBUnscannedBytes)
	for _, depth := range cur.Labeled(obs.MBShardQueueDepth) {
		r.QueueDepth += int64(depth)
	}
	if old == nil || window <= 0 {
		return r
	}
	sec := window.Seconds()
	rate := func(name string) float64 {
		c, _ := cur.Value(name)
		o, _ := old.Value(name)
		if c < o { // worker restarted: counters reset
			o = 0
		}
		return (c - o) / sec
	}
	r.TokensPerSec = rate(obs.MBTokensScannedTotal)
	r.AlertsPerSec = rate(obs.MBAlertsTotal)
	r.ConnsPerSec = rate(obs.MBConnectionsTotal)
	r.DegradedPerSec = rate(obs.MBDegradedTotal)
	r.FailClosedPerSec = rate(obs.MBFailClosedDropsTotal)
	return r
}

// Workers returns every worker's health row in config order, refreshing
// the blindbox_fleet_worker_up / staleness gauges as a side effect.
func (s *Scraper) Workers() []WorkerHealth {
	out := make([]WorkerHealth, len(s.workers))
	for i, w := range s.workers {
		h := s.health(w)
		out[i] = h
		s.setHealthGauges(w, h)
	}
	return out
}

// updateHealthMetrics refreshes the per-worker gauges after a round.
func (s *Scraper) updateHealthMetrics() {
	for _, w := range s.workers {
		s.setHealthGauges(w, s.health(w))
	}
}

// setHealthGauges writes one worker's health into its gauges.
func (s *Scraper) setHealthGauges(w *worker, h WorkerHealth) {
	if h.State == StateUp {
		w.upGauge.Set(1)
	} else {
		w.upGauge.Set(0)
	}
	if h.StalenessSeconds >= 0 {
		w.staleness.Set(int64(h.StalenessSeconds))
	}
}

// EvaluateSLOs evaluates the declared SLOs against the latest snapshots
// and updates the blindbox_fleet_slo_* metrics. Results come back in
// declaration order.
func (s *Scraper) EvaluateSLOs() []SLOResult {
	_, expos := s.latest()
	results := EvaluateSLOs(s.slos, expos)
	for _, r := range results {
		cell := s.sloUp.With(r.Name)
		if r.OK {
			cell.Set(1)
		} else {
			cell.Set(0)
			s.sloBreaches.With(r.Name).Inc()
		}
	}
	return results
}

// CheckReport is the one-shot fleet verdict behind bbfleet -check and
// its -json output.
type CheckReport struct {
	// Workers are the per-worker health rows.
	Workers []WorkerHealth `json:"workers"`
	// SLOs are the evaluation results in declaration order.
	SLOs []SLOResult `json:"slos"`
	// Fleet sums the per-worker rates and totals.
	Fleet Rates `json:"fleet"`
	// OK is the exit-code verdict: every SLO met and no worker down.
	OK bool `json:"ok"`
}

// Check builds the fleet verdict from current state (callers run
// ScrapeOnce or Run first). OK is false when any declared SLO is
// breached or any worker is down — a fleet that cannot be observed
// cannot be declared healthy.
func (s *Scraper) Check() CheckReport {
	rep := CheckReport{Workers: s.Workers(), SLOs: s.EvaluateSLOs(), OK: true}
	for _, w := range rep.Workers {
		rep.Fleet.TokensPerSec += w.Rates.TokensPerSec
		rep.Fleet.AlertsPerSec += w.Rates.AlertsPerSec
		rep.Fleet.ConnsPerSec += w.Rates.ConnsPerSec
		rep.Fleet.DegradedPerSec += w.Rates.DegradedPerSec
		rep.Fleet.FailClosedPerSec += w.Rates.FailClosedPerSec
		rep.Fleet.QueueDepth += w.Rates.QueueDepth
		rep.Fleet.Connections += w.Rates.Connections
		rep.Fleet.TokensScanned += w.Rates.TokensScanned
		rep.Fleet.Alerts += w.Rates.Alerts
		rep.Fleet.UnscannedBytes += w.Rates.UnscannedBytes
		if w.State == StateDown {
			rep.OK = false
		}
	}
	for _, r := range rep.SLOs {
		if !r.OK {
			rep.OK = false
		}
	}
	return rep
}

// sortedKeys returns m's keys sorted (stable rollup rendering).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
