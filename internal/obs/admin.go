// The admin HTTP endpoint: /metrics (Prometheus text), /metrics.json
// (registry snapshot), /healthz, and net/http/pprof under /debug/pprof/.
// cmd/bbmb and cmd/bbserver mount this behind their -admin flag; tests
// mount it on httptest servers.

package obs

import (
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
)

// AdminMux builds the admin endpoint for a registry. The pprof handlers
// are mounted explicitly (not via the net/http/pprof DefaultServeMux side
// effect), so the admin mux composes with any process-global handlers.
func AdminMux(r *Registry) *http.ServeMux {
	RegisterBuildInfo(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//lint:ignore unchecked-err a failed scrape write means the client went away; nothing to do
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		//lint:ignore unchecked-err a failed scrape write means the client went away; nothing to do
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		//lint:ignore unchecked-err a failed health-check write means the client went away; nothing to do
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeAdmin listens on addr and serves the admin endpoint in a background
// goroutine, returning the bound listener (so callers can report the
// resolved port and close it on shutdown). Serve errors after a successful
// bind are logged, not fatal: losing the admin port must not take down the
// data path.
func ServeAdmin(addr string, r *Registry, log *slog.Logger) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: AdminMux(r)}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			OrNop(log).Error("admin endpoint stopped", "addr", ln.Addr().String(), "err", err)
		}
	}()
	return ln, nil
}
