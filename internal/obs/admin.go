// The admin HTTP endpoint: /metrics (Prometheus text), /metrics.json
// (registry snapshot), /healthz, net/http/pprof under /debug/pprof/, and —
// when a Recorder is mounted — the flight-recorder views /debug/flows and
// /debug/flightrecorder. cmd/bbmb and cmd/bbserver mount this behind their
// -admin flag; tests mount it on httptest servers.

package obs

import (
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// AdminMux builds the admin endpoint for a registry. The pprof handlers
// are mounted explicitly (not via the net/http/pprof DefaultServeMux side
// effect), so the admin mux composes with any process-global handlers.
func AdminMux(r *Registry) *http.ServeMux {
	RegisterBuildInfo(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//lint:ignore unchecked-err a failed scrape write means the client went away; nothing to do
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		//lint:ignore unchecked-err a failed scrape write means the client went away; nothing to do
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		//lint:ignore unchecked-err a failed health-check write means the client went away; nothing to do
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Mount adds the flight-recorder views to an admin mux:
//
//	/debug/flows                  JSON {live, recent}: the flow tables
//	/debug/flightrecorder?flow=N  on-demand ring dump of a live flow
//	/debug/spans                  JSONL rings of every live flow
//	/debug/trace?id=<32-hex>      JSONL rings of live flows on one trace
//
// All are read-only snapshots; dumping a flow does not flush or end it.
// The JSONL endpoints are the pull feed of agg.PullSpans (bbfleet's
// /cluster/trace and bbtrace -from-url): application/x-ndjson bodies in
// the JSONLSink schema, 200 with an empty body when nothing matches, 400
// on a malformed trace ID.
func (r *Recorder) Mount(mux *http.ServeMux) {
	writeSpans := func(w http.ResponseWriter, spans []Span) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		sink := NewJSONLSink(w)
		for _, sp := range spans {
			sink.Emit(sp)
		}
		//lint:ignore unchecked-err a failed debug-dump write means the client went away; nothing to do
		sink.Close()
	}
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, _ *http.Request) {
		writeSpans(w, r.LiveSpans())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query().Get("id")
		if q == "" {
			http.Error(w, "missing id parameter (use /debug/trace?id=<32-hex trace ID>; see /debug/flows)", http.StatusBadRequest)
			return
		}
		if _, err := ParseTraceID(q); err != nil {
			http.Error(w, "bad id parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		writeSpans(w, r.SpansForTrace(q))
	})
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		//lint:ignore unchecked-err a failed debug-dump write means the client went away; nothing to do
		enc.Encode(v)
	}
	mux.HandleFunc("/debug/flows", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, struct {
			Live   []FlowSummary `json:"live"`
			Recent []FlowSummary `json:"recent"`
		}{r.Live(), r.Recent()})
	})
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query().Get("flow")
		if q == "" {
			http.Error(w, "missing flow parameter (use /debug/flightrecorder?flow=<id>; see /debug/flows)", http.StatusBadRequest)
			return
		}
		id, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "bad flow parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		f := r.lookup(id)
		if f == nil {
			http.Error(w, "no live flow "+q+" (ended flows appear in /debug/flows recent)", http.StatusNotFound)
			return
		}
		writeJSON(w, struct {
			Summary FlowSummary `json:"summary"`
			Spans   []Span      `json:"spans"`
		}{f.summary(DispositionLive, ""), f.Snapshot()})
	})
}

// ServeAdmin listens on addr and serves the admin endpoint in a background
// goroutine, returning the bound listener (so callers can report the
// resolved port and close it on shutdown). Serve errors after a successful
// bind are logged, not fatal: losing the admin port must not take down the
// data path.
func ServeAdmin(addr string, r *Registry, log *slog.Logger) (net.Listener, error) {
	return ServeAdminMux(addr, AdminMux(r), log)
}

// ServeAdminMux is ServeAdmin for a caller-built mux (typically AdminMux
// plus Recorder.Mount).
func ServeAdminMux(addr string, mux *http.ServeMux, log *slog.Logger) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			OrNop(log).Error("admin endpoint stopped", "addr", ln.Addr().String(), "err", err)
		}
	}()
	return ln, nil
}
