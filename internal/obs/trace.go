// Per-flow tracing: span records for the pipeline stages (handshake, rule
// preparation, tokenize, encrypt, scan, forward) with flow and shard IDs.
// Spans go to a pluggable Sink; the JSONL sink makes them greppable and
// consumable by `bbtrace -spans`.

package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Span names emitted by the pipeline. The set is closed on purpose: tools
// (bbtrace -spans) and the DESIGN.md schema enumerate it.
const (
	SpanHandshake = "handshake" // hello exchange (endpoint or middlebox leg)
	SpanPrep      = "prep"      // obfuscated rule encryption (§3.3)
	SpanTokenize  = "tokenize"  // sender-side tokenization of one chunk
	SpanEncrypt   = "encrypt"   // sender-side DPIEnc encryption of one batch
	SpanScan      = "scan"      // middlebox detection of one token batch
	SpanForward   = "forward"   // one middlebox forwarding direction, whole life
)

// Span is one trace record. Flow identifies the connection (middlebox conn
// ID, or a transport-local sequence number on endpoints); Dir is "c2s",
// "s2c", or empty for connection-level spans; Shard is the detection shard
// for scan spans (-1 when scanning ran inline on the forwarding goroutine).
type Span struct {
	Flow  uint64 `json:"flow"`
	Dir   string `json:"dir,omitempty"`
	Name  string `json:"span"`
	Shard int    `json:"shard,omitempty"`
	// Start is the span's wall-clock start in Unix nanoseconds.
	Start int64 `json:"start_unix_ns"`
	// Dur is the span duration in nanoseconds.
	Dur int64 `json:"dur_ns"`
	// Tokens and Bytes size the work the span covers, where applicable.
	Tokens int `json:"tokens,omitempty"`
	Bytes  int `json:"bytes,omitempty"`
	// Err carries the error that ended the span, if any.
	Err string `json:"err,omitempty"`
}

// Sink receives spans. Emit must be safe for concurrent use: the middlebox
// calls it from detection shards and forwarding goroutines alike. A slow
// sink back-pressures the pipeline; production sinks should buffer.
type Sink interface {
	Emit(Span)
}

// JSONLSink writes one JSON object per span per line, buffered. Close (or
// Flush) must be called to drain the buffer.
type JSONLSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewJSONLSink wraps w in a buffered JSONL span sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit implements Sink. Encoding errors are unrecoverable mid-stream and
// are dropped; the final Flush reports the writer's health.
func (s *JSONLSink) Emit(sp Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore unchecked-err a failed span write must not kill traffic forwarding; Flush surfaces persistent writer errors
	s.enc.Encode(sp)
}

// Flush drains buffered spans to the underlying writer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bw.Flush()
}

// CollectSink retains every span in memory — the test and tooling sink.
type CollectSink struct {
	mu    sync.Mutex
	spans []Span
}

// Emit implements Sink.
func (s *CollectSink) Emit(sp Span) {
	s.mu.Lock()
	s.spans = append(s.spans, sp)
	s.mu.Unlock()
}

// Spans returns a copy of the collected spans in emission order.
func (s *CollectSink) Spans() []Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Span(nil), s.spans...)
}

// ReadSpans parses a JSONL span stream (as written by JSONLSink).
func ReadSpans(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var out []Span
	for {
		var sp Span
		if err := dec.Decode(&sp); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		out = append(out, sp)
	}
}
