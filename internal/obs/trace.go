// Per-flow distributed tracing: span records for the pipeline stages
// (connection, handshake, rule preparation and its §3.3 sub-phases,
// tokenize, encrypt, scan, forward) with flow, shard, trace, span and
// parent IDs. Spans go to a pluggable Sink; the JSONL sink makes them
// greppable and consumable by `bbtrace -spans` / `bbtrace -assemble`.
//
// Schema v2 (DESIGN.md §8): every span may carry a 128-bit TraceID shared
// by all three parties of one BlindBox flow (negotiated in the hello
// extension), a process-unique SpanID, and the SpanID of its parent. The
// client's connection span is the root (parent 0); when only the
// middlebox traces, it creates the root itself and injects the context
// into the forwarded hello so the server can still join the trace.

package obs

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Span names emitted by the pipeline. The set is closed on purpose: tools
// (bbtrace -spans, bbtrace -assemble) and the DESIGN.md schema enumerate it.
const (
	SpanConn      = "conn"      // whole connection life at the party that owns it
	SpanHandshake = "handshake" // hello exchange (endpoint or middlebox leg)
	SpanPrep      = "prep"      // obfuscated rule encryption (§3.3)
	SpanTokenize  = "tokenize"  // sender-side tokenization of one chunk
	SpanEncrypt   = "encrypt"   // sender-side DPIEnc encryption of one batch
	SpanScan      = "scan"      // middlebox detection of one token batch
	SpanForward   = "forward"   // one middlebox forwarding direction, whole life
)

// §3.3 setup sub-span names: children of the prep / handshake spans that
// break the obfuscated rule-encryption setup into its cost components, so
// the paper's setup table regenerates from traces (bbtrace -assemble,
// blindbench -experiment setupbreakdown).
const (
	SpanPrepGarble  = "prep.garble"   // endpoint: garbling one AES circuit
	SpanPrepOTBase  = "prep.ot_base"  // middlebox leg: base-OT round (keys + msgA/msgB)
	SpanPrepOTExt   = "prep.ot_ext"   // middlebox leg: IKNP extension + label unmask
	SpanPrepLabels  = "prep.labels"   // middlebox leg: garbled rows + endpoint-label transfer
	SpanPrepRuleEnc = "prep.rule_enc" // middlebox: verify + evaluate one rule circuit
)

// Event span names: zero-duration markers the flight recorder captures for
// key flow-lifecycle incidents, so a tail-flushed trace explains *why* the
// flow was interesting. They parent under the flow's connection context
// like ordinary spans; Err carries the detail (leg, rule SID, fault).
const (
	SpanEventRetry    = "event.retry"    // a bounded retry fired (dial/prep)
	SpanEventTimeout  = "event.timeout"  // a step deadline expired (barrier, idle, write)
	SpanEventDegraded = "event.degraded" // fail-open degradation: flow forwards unscanned
	SpanEventFault    = "event.fault"    // netem fault injected on a leg
	SpanEventAlert    = "event.alert"    // detection event dispatched
	SpanEventBlocked  = "event.blocked"  // block-action rule severed the flow
)

// Party values for Span.Party: which of the three BlindBox parties
// emitted the span.
const (
	PartyClient = "client"
	PartyServer = "server"
	PartyMB     = "mb"
)

// Span is one trace record. Flow identifies the connection locally at the
// emitting party (middlebox conn ID, or a transport-local sequence number
// on endpoints) — only TraceID joins parties. Dir is "c2s", "s2c" (data
// direction), "client"/"server" (which middlebox prep leg), or empty for
// connection-level spans. Shard is the detection shard for scan spans
// (-1 when scanning ran inline on the forwarding goroutine) and nil for
// every other span — a pointer so shard 0 survives JSON round-trips.
type Span struct {
	// TraceID is the 32-hex-digit flow trace ID shared across parties
	// (empty when tracing context was not negotiated).
	TraceID string `json:"trace,omitempty"`
	// SpanID is this span's process-unique ID; Parent is the SpanID of
	// its parent (0 on the root span of a trace).
	SpanID uint64 `json:"id,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	// Party names the emitting party: "client", "server" or "mb".
	Party string `json:"party,omitempty"`
	Flow  uint64 `json:"flow"`
	Dir   string `json:"dir,omitempty"`
	Name  string `json:"span"`
	Shard *int   `json:"shard,omitempty"`
	// Start is the span's wall-clock start in Unix nanoseconds.
	Start int64 `json:"start_unix_ns"`
	// Dur is the span duration in nanoseconds.
	Dur int64 `json:"dur_ns"`
	// Tokens and Bytes size the work the span covers, where applicable.
	Tokens int `json:"tokens,omitempty"`
	Bytes  int `json:"bytes,omitempty"`
	// Gates and Rows size garbled-circuit work (§3.3 sub-spans): AND
	// gates in the circuit and garbled-table rows produced/transferred.
	Gates int `json:"gates,omitempty"`
	Rows  int `json:"rows,omitempty"`
	// Err carries the error that ended the span, if any.
	Err string `json:"err,omitempty"`
	// Sampled labels how the span reached the sink when a flight recorder
	// mediated emission: "head" (deterministic head-sampling decision) or
	// "tail" (flushed because the flow ended in an interesting terminal
	// state). Empty for spans emitted directly to a sink.
	Sampled string `json:"sampled,omitempty"`
}

// ShardID returns a pointer to n for Span.Shard, so scan spans can record
// shard 0 explicitly instead of having omitempty drop it.
func ShardID(n int) *int { return &n }

// TraceID is the 128-bit distributed trace identifier negotiated in the
// BlindBox hello. The zero value means "no trace context".
type TraceID [16]byte

// NewTraceID draws a random, effectively unique trace ID.
func NewTraceID() TraceID {
	var t TraceID
	//lint:ignore unchecked-err crypto/rand.Read never fails on supported platforms; a zero ID only degrades tracing, not security
	rand.Read(t[:])
	return t
}

// IsZero reports whether t carries no trace context.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders t as 32 lowercase hex digits (the Span.TraceID wire form).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// ParseTraceID parses the 32-hex-digit form produced by String.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("obs: trace ID must be 32 hex digits, got %d", len(s))
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return t, fmt.Errorf("obs: bad trace ID: %w", err)
	}
	return t, nil
}

// spanIDCounter allocates process-unique span IDs: an atomic counter
// seeded from crypto/rand so IDs from distinct processes in one
// deployment do not collide in practice. Lives here because internal/obs
// is the one package allowed to hand-roll atomics (bblint obs-stats).
var spanIDCounter atomic.Uint64

func init() {
	var seed [8]byte
	//lint:ignore unchecked-err crypto/rand.Read never fails on supported platforms; a fixed seed only weakens cross-process span-ID uniqueness, not security
	rand.Read(seed[:])
	spanIDCounter.Store(binary.LittleEndian.Uint64(seed[:]))
}

// NewSpanID allocates a fresh nonzero span ID.
func NewSpanID() uint64 {
	for {
		if id := spanIDCounter.Add(1); id != 0 {
			return id
		}
	}
}

// SpanCtx is the propagation context of distributed tracing: the trace a
// span belongs to, the span's own ID, and its parent's ID. The zero value
// is "not tracing" and every method on it is a cheap no-op, preserving
// the nil-sink zero-cost contract.
type SpanCtx struct {
	Trace  TraceID
	Span   uint64
	Parent uint64
	// str caches Trace's hex rendering so Stamp on a hot path costs a
	// string-header copy instead of a per-span allocation. Contexts built
	// by NewSpanCtx/JoinSpanCtx carry it; Child propagates it; contexts
	// assembled field-by-field leave it empty and Stamp falls back to
	// rendering per span.
	str string
}

// NewSpanCtx starts a fresh trace and returns its root context
// (Parent 0). The Trace/Span pair is what the hello extension carries.
func NewSpanCtx() SpanCtx {
	t := NewTraceID()
	return SpanCtx{Trace: t, Span: NewSpanID(), str: t.String()}
}

// JoinSpanCtx adopts trace context received from a peer (the hello
// extension's trace ID + root span ID), pre-rendering the trace string so
// spans stamped under it stay allocation-free.
func JoinSpanCtx(t TraceID, span uint64) SpanCtx {
	return SpanCtx{Trace: t, Span: span, str: t.String()}
}

// Valid reports whether c carries trace context.
func (c SpanCtx) Valid() bool { return !c.Trace.IsZero() }

// TraceString returns the cached 32-hex rendering of c's trace ID,
// computing it when c was assembled without one. Zero context: "".
func (c SpanCtx) TraceString() string {
	if !c.Valid() {
		return ""
	}
	if c.str != "" {
		return c.str
	}
	return c.Trace.String()
}

// Child allocates a context for a new child span of c: same trace, fresh
// span ID, parent = c's span. Child of the zero context is the zero
// context, so untraced paths stay free.
func (c SpanCtx) Child() SpanCtx {
	if !c.Valid() {
		return SpanCtx{}
	}
	return SpanCtx{Trace: c.Trace, Span: NewSpanID(), Parent: c.Span, str: c.str}
}

// Stamp writes c's identity onto sp (trace, span and parent IDs). A zero
// context stamps nothing, leaving sp a v1 flat span.
func (c SpanCtx) Stamp(sp *Span) {
	if !c.Valid() {
		return
	}
	sp.TraceID = c.TraceString()
	sp.SpanID = c.Span
	sp.Parent = c.Parent
}

// Sink receives spans. Emit must be safe for concurrent use: the middlebox
// calls it from detection shards and forwarding goroutines alike. A slow
// sink back-pressures the pipeline; production sinks should buffer.
type Sink interface {
	Emit(Span)
}

// JSONLSink writes one JSON object per span per line, buffered. Close (or
// Flush) must be called to drain the buffer; after Close, further Emits
// are dropped, so shutdown paths can close the sink while stragglers are
// still emitting.
type JSONLSink struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	enc    *json.Encoder
	closed bool
}

// NewJSONLSink wraps w in a buffered JSONL span sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit implements Sink. Encoding errors are unrecoverable mid-stream and
// are dropped; the final Flush reports the writer's health.
func (s *JSONLSink) Emit(sp Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	//lint:ignore unchecked-err a failed span write must not kill traffic forwarding; Flush surfaces persistent writer errors
	s.enc.Encode(sp)
}

// Flush drains buffered spans to the underlying writer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bw.Flush()
}

// Close drains the buffer and marks the sink closed; concurrent or later
// Emits become no-ops. It does not close the underlying writer (the sink
// does not own the file). Close is idempotent.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.bw.Flush()
}

// CollectSink retains every span in memory — the test and tooling sink.
type CollectSink struct {
	mu    sync.Mutex
	spans []Span
}

// Emit implements Sink.
func (s *CollectSink) Emit(sp Span) {
	s.mu.Lock()
	s.spans = append(s.spans, sp)
	s.mu.Unlock()
}

// Spans returns a copy of the collected spans in emission order.
func (s *CollectSink) Spans() []Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Span(nil), s.spans...)
}

// ReadSpans parses a JSONL span stream (as written by JSONLSink).
func ReadSpans(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var out []Span
	for {
		var sp Span
		if err := dec.Decode(&sp); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		out = append(out, sp)
	}
}
