// Metric exposition: Prometheus text format for scrapes and a JSON
// (expvar-style) snapshot for humans, benchmarks, and the blindbench
// -metrics-out flag.

package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Families appear in registration
// order; labeled children are sorted by label value for stable output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, m := range r.snapshotMetrics() {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, escapeHelp(m.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
			return err
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.gauge.Value())
		case kindHistogram:
			err = writeHistogram(w, m.name, m.histogram)
		case kindCounterVec:
			for _, kv := range sortedCounterChildren(m.counterVec) {
				if _, err = fmt.Fprintf(w, "%s{%s=%q} %d\n", m.name, m.counterVec.label, kv.k, kv.v); err != nil {
					break
				}
			}
		case kindGaugeVec:
			for _, kv := range sortedGaugeChildren(m.gaugeVec) {
				if _, err = fmt.Fprintf(w, "%s{%s=%q} %d\n", m.name, m.gaugeVec.label, kv.k, kv.v); err != nil {
					break
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, h *Histogram) error {
	cum := h.snapshot()
	for i, bound := range h.bounds {
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum[len(cum)-1]); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	return err
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes newlines and backslashes per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

type counterChild struct {
	k string
	v uint64
}

func sortedCounterChildren(vec *CounterVec) []counterChild {
	vals := vec.Values()
	out := make([]counterChild, 0, len(vals))
	for k, v := range vals {
		out = append(out, counterChild{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

type gaugeChild struct {
	k string
	v int64
}

func sortedGaugeChildren(vec *GaugeVec) []gaugeChild {
	vals := vec.Values()
	out := make([]gaugeChild, 0, len(vals))
	for k, v := range vals {
		out = append(out, gaugeChild{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

// HistogramSnapshot is the JSON form of one histogram.
type HistogramSnapshot struct {
	// Buckets maps each upper bound (formatted as by Prometheus, plus
	// "+Inf") to its cumulative count.
	Buckets map[string]uint64 `json:"buckets"`
	Sum     float64           `json:"sum"`
	Count   uint64            `json:"count"`
}

// Snapshot returns the current value of every metric as a JSON-ready map:
// counters and gauges as numbers, vecs as label-value maps, histograms as
// HistogramSnapshot. encoding/json sorts the keys, so marshaled snapshots
// diff cleanly.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	out := make(map[string]any)
	for _, m := range r.snapshotMetrics() {
		switch m.kind {
		case kindCounter:
			out[m.name] = m.counter.Value()
		case kindGauge:
			out[m.name] = m.gauge.Value()
		case kindHistogram:
			h := m.histogram
			cum := h.snapshot()
			buckets := make(map[string]uint64, len(cum))
			for i, bound := range h.bounds {
				buckets[formatFloat(bound)] = cum[i]
			}
			buckets["+Inf"] = cum[len(cum)-1]
			out[m.name] = HistogramSnapshot{Buckets: buckets, Sum: h.Sum(), Count: h.Count()}
		case kindCounterVec:
			out[m.name] = m.counterVec.Values()
		case kindGaugeVec:
			out[m.name] = m.gaugeVec.Values()
		}
	}
	return out
}
