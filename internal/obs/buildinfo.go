// blindbox_build_info: the standard "what binary is this" gauge. One
// series with value 1 whose label carries the Go version and VCS revision
// from the embedded build metadata, so a scrape identifies the deployed
// build without shelling into the host.

package obs

import (
	"fmt"
	"runtime/debug"
)

// RegisterBuildInfo registers the blindbox_build_info gauge on r and sets
// its single series to 1. The version label is "<goversion> <revision>"
// (revision "unknown" outside a VCS build, "-dirty" appended for modified
// trees). Idempotent: registering twice reuses the same cell. A nil
// registry is a no-op, like every other registration.
func RegisterBuildInfo(r *Registry) {
	v := r.GaugeVec(BuildInfo, Help(BuildInfo), "version")
	v.With(buildVersion()).Set(1)
}

// RegisterWorkerInfo registers the blindbox_worker_info gauge on r and
// sets the series for the operator-assigned worker name to 1 (cmd/bbmb
// -worker). The fleet aggregator reads the label to confirm it scraped
// the worker it thinks it scraped. Empty name or nil registry: no-op.
func RegisterWorkerInfo(r *Registry, name string) {
	if r == nil || name == "" {
		return
	}
	v := r.GaugeVec(WorkerInfo, Help(WorkerInfo), "worker")
	v.With(name).Set(1)
}

// buildVersion renders the embedded build metadata as one label value.
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "unknown", ""
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	return fmt.Sprintf("%s %s%s", bi.GoVersion, rev, dirty)
}
