package obs

import (
	"bytes"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if again := r.Counter("test_total", "help"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("test_depth", "help")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", nil)
	cv := r.CounterVec("x_by_y_total", "", "y")
	gv := r.GaugeVec("x_by_y", "", "y")
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	cv.With("a").Inc()
	gv.With("a").Set(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles accumulated state")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil || r.Names() != nil {
		t.Fatal("nil registry produced output")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{1, 10})
	h.Observe(0.5) // <= 1
	h.Observe(1)   // le is inclusive: still the 1-bucket
	h.Observe(5)   // <= 10
	h.Observe(100) // +Inf
	cum := h.snapshot()
	if cum[0] != 2 || cum[1] != 3 || cum[2] != 4 {
		t.Fatalf("cumulative buckets = %v, want [2 3 4]", cum)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got := h.Sum(); got != 106.5 {
		t.Fatalf("sum = %g, want 106.5", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("bb_tokens_total", "Tokens seen.").Add(12)
	r.Gauge("bb_depth", "Queue depth.").Set(-3)
	r.Histogram("bb_lat_seconds", "Latency.", []float64{0.25, 1}).Observe(0.5)
	vec := r.CounterVec("bb_alerts_by_sid_total", "Alerts by SID.", "sid")
	vec.With("7").Add(2)
	vec.With("101").Inc()
	r.GaugeVec("bb_shard_depth", "Depth by shard.", "shard").With("0").Set(4)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP bb_tokens_total Tokens seen.",
		"# TYPE bb_tokens_total counter",
		"bb_tokens_total 12",
		"# HELP bb_depth Queue depth.",
		"# TYPE bb_depth gauge",
		"bb_depth -3",
		"# HELP bb_lat_seconds Latency.",
		"# TYPE bb_lat_seconds histogram",
		`bb_lat_seconds_bucket{le="0.25"} 0`,
		`bb_lat_seconds_bucket{le="1"} 1`,
		`bb_lat_seconds_bucket{le="+Inf"} 1`,
		"bb_lat_seconds_sum 0.5",
		"bb_lat_seconds_count 1",
		"# HELP bb_alerts_by_sid_total Alerts by SID.",
		"# TYPE bb_alerts_by_sid_total counter",
		`bb_alerts_by_sid_total{sid="101"} 1`,
		`bb_alerts_by_sid_total{sid="7"} 2`,
		"# HELP bb_shard_depth Depth by shard.",
		"# TYPE bb_shard_depth gauge",
		`bb_shard_depth{shard="0"} 4`,
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(5)
	r.Histogram("h_seconds", "", []float64{1}).Observe(2)
	r.CounterVec("v_total", "", "k").With("a").Add(9)
	snap := r.Snapshot()
	if snap["c_total"].(uint64) != 5 {
		t.Fatalf("snapshot counter = %v", snap["c_total"])
	}
	h := snap["h_seconds"].(HistogramSnapshot)
	if h.Count != 1 || h.Sum != 2 || h.Buckets["+Inf"] != 1 || h.Buckets["1"] != 0 {
		t.Fatalf("snapshot histogram = %+v", h)
	}
	if snap["v_total"].(map[string]uint64)["a"] != 9 {
		t.Fatalf("snapshot vec = %v", snap["v_total"])
	}
}

// TestConcurrentObserveAndScrape runs writers against every metric kind
// while scrapes proceed — the -race contract of the registry.
func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	cv := r.CounterVec("cv_total", "", "k")
	gv := r.GaugeVec("gv", "", "k")

	const writers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := string(rune('a' + w%4))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) * 1e-5)
				cv.With(key).Inc()
				gv.With(key).Add(1)
			}
		}(w)
	}
	// Concurrent scrapes plus late registrations.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Error(err)
				return
			}
			r.Snapshot()
			r.Counter("late_total", "").Inc()
		}
	}()
	wg.Wait()

	if c.Value() != writers*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), writers*iters)
	}
	if h.Count() != writers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), writers*iters)
	}
	var vecTotal uint64
	for _, v := range cv.Values() {
		vecTotal += v
	}
	if vecTotal != writers*iters {
		t.Fatalf("vec total = %d, want %d", vecTotal, writers*iters)
	}
}

// TestMetricNames is the exposition lint: every catalog entry must follow
// the Prometheus name grammar and the repo's suffix conventions, and carry
// a help string. Instrumented packages register only catalog names, which
// the e2e metrics test (package blindbox) cross-checks against a live
// scrape.
func TestMetricNames(t *testing.T) {
	if len(Catalog) == 0 {
		t.Fatal("empty catalog")
	}
	for name, help := range Catalog {
		if !nameRE.MatchString(name) {
			t.Errorf("%s: not a valid Prometheus metric name", name)
		}
		if !strings.HasPrefix(name, "blindbox_") {
			t.Errorf("%s: missing blindbox_ prefix", name)
		}
		if help == "" {
			t.Errorf("%s: no help string", name)
		}
		switch {
		case strings.HasSuffix(name, "_total"),
			strings.HasSuffix(name, "_seconds"),
			strings.HasSuffix(name, "_bytes"),
			strings.HasSuffix(name, "_depth"),
			strings.HasSuffix(name, "_info"),
			strings.HasSuffix(name, "_up"):
		default:
			t.Errorf("%s: name must end in _total, _seconds, _bytes, _depth, _info or _up", name)
		}
	}
	if Help(MBAlertsTotal) == "" || Help("nonexistent") != "" {
		t.Error("Help lookup misbehaves")
	}
}

func TestRegisterPanicsOnBadNameAndKindConflict(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("bad name", func() { r.Counter("bad name", "") })
	mustPanic("bad label", func() { r.CounterVec("ok_total", "", "bad label") })
	r.Counter("taken_total", "")
	mustPanic("kind conflict", func() { r.Gauge("taken_total", "") })
	mustPanic("unsorted buckets", func() { r.Histogram("h_seconds", "", []float64{2, 1}) })
}

func TestAdminMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("bb_x_total", "X.").Add(2)
	srv := httptest.NewServer(AdminMux(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "bb_x_total 2") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, `blindbox_build_info{version="`) {
		t.Errorf("/metrics missing build_info: code %d body %q", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, `"bb_x_total": 2`) {
		t.Errorf("/metrics.json: code %d body %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz: code %d body %q", code, body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline: code %d", code)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: code %d", code)
	}
}

// TestAdminEndpointContentTypes audits status codes and Content-Type
// headers on every AdminMux and Recorder.Mount endpoint. The fleet
// scraper and span pull client key off these; a regression here breaks
// /cluster/* silently, so the whole surface is pinned.
func TestAdminEndpointContentTypes(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(RecorderConfig{Metrics: reg})
	ctx := NewSpanCtx()
	f := rec.BeginFlowSampled(7, PartyMB, ctx, false)
	f.Emit(Span{Flow: 7, Party: PartyMB, Name: SpanScan, Start: 1, Dur: 2})
	defer f.End("")

	mux := AdminMux(reg)
	rec.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	const errCT = "text/plain; charset=utf-8" // what http.Error sets
	cases := []struct {
		path string
		code int
		ct   string
	}{
		{"/metrics", 200, "text/plain; version=0.0.4; charset=utf-8"},
		{"/metrics.json", 200, "application/json"},
		{"/healthz", 200, "text/plain; charset=utf-8"},
		{"/debug/flows", 200, "application/json"},
		{"/debug/flightrecorder", 400, errCT},
		{"/debug/flightrecorder?flow=bogus", 400, errCT},
		{"/debug/flightrecorder?flow=9999", 404, errCT},
		{"/debug/flightrecorder?flow=7", 200, "application/json"},
		{"/debug/spans", 200, "application/x-ndjson"},
		{"/debug/trace", 400, errCT},
		{"/debug/trace?id=nothex", 400, errCT},
		{"/debug/trace?id=" + ctx.TraceString(), 200, "application/x-ndjson"},
		{"/debug/trace?id=00000000000000000000000000000000", 200, "application/x-ndjson"},
	}
	for _, tc := range cases {
		resp, err := srv.Client().Get(srv.URL + tc.path)
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: reading body: %v", tc.path, err)
		}
		if resp.StatusCode != tc.code {
			t.Errorf("%s: code %d, want %d (body %q)", tc.path, resp.StatusCode, tc.code, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != tc.ct {
			t.Errorf("%s: Content-Type %q, want %q", tc.path, ct, tc.ct)
		}
	}

	// The matching /debug/trace pull returns the recorded span; the
	// zero-trace pull returns an empty 200 body.
	resp, err := srv.Client().Get(srv.URL + "/debug/trace?id=" + ctx.TraceString())
	if err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(resp.Body)
	resp.Body.Close()
	if err != nil || len(spans) != 1 || spans[0].Name != SpanScan || spans[0].TraceID != ctx.TraceString() {
		t.Fatalf("trace pull: spans %+v err %v", spans, err)
	}
}
