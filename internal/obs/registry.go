// Package obs is the observability layer of the BlindBox pipeline: a
// stdlib-only metrics registry (atomic counters, gauges and fixed-bucket
// histograms, exposed in Prometheus text format and as JSON), per-flow
// trace spans emitted to pluggable sinks, and the admin HTTP endpoint that
// serves both together with net/http/pprof.
//
// The paper's evaluation (§7) is entirely about where time goes —
// tokenization, DPIEnc encryption, detection, rule preparation — and a
// deployed middlebox needs those same quantities live: shard queue depths,
// detection-barrier stalls, per-stage latency. Every pipeline package
// accepts an optional *Registry; the disabled path is a nil registry, whose
// handles are nil pointers with no-op methods, so uninstrumented hot paths
// pay only a nil check.
//
// Concurrency: all metric operations (Add, Set, Observe, With) are safe for
// concurrent use with each other and with scrapes. Registration is
// idempotent — asking a registry for an existing name returns the existing
// metric — so per-connection components can share one registry.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// nameRE is the Prometheus metric/label name grammar.
var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Counter is a monotonically increasing uint64. A nil Counter is a valid
// no-op.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value. A nil Gauge is a valid no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value (0 for a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus style:
// counts[i] tallies observations <= bounds[i], with one implicit +Inf
// bucket at the end. A nil Histogram is a valid no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // math.Float64bits of the running sum
	count  atomic.Uint64
}

// LatencyBuckets are the default histogram bounds for durations in seconds,
// spanning 1µs (one AES batch) to 2.5s (a stalled shard).
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 1e-5, 2.5e-5, 1e-4, 2.5e-4,
	1e-3, 2.5e-3, 1e-2, 2.5e-2, 0.1, 0.25, 1, 2.5,
}

// SizeBuckets are the default histogram bounds for byte sizes, spanning one
// token record to the 1MiB counter-reset interval.
var SizeBuckets = []float64{
	64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns cumulative bucket counts aligned with bounds plus +Inf.
func (h *Histogram) snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// CounterVec is a family of counters keyed by one label. Children are
// created on first use; lookups after that are a read-locked map access,
// acceptable for event-rate (not token-rate) paths such as per-SID alert
// counts. A nil CounterVec is a valid no-op.
type CounterVec struct {
	label string
	mu    sync.RWMutex
	m     map[string]*Counter
}

// With returns the child counter for the label value, creating it if
// needed. On a nil vec it returns nil (a no-op counter).
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.m[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.m[value]; c == nil {
		c = &Counter{}
		v.m[value] = c
	}
	return c
}

// Values returns a copy of the children's current values by label value.
func (v *CounterVec) Values() map[string]uint64 {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]uint64, len(v.m))
	for k, c := range v.m {
		out[k] = c.Value()
	}
	return out
}

// GaugeVec is a family of gauges keyed by one label. A nil GaugeVec is a
// valid no-op.
type GaugeVec struct {
	label string
	mu    sync.RWMutex
	m     map[string]*Gauge
}

// With returns the child gauge for the label value, creating it if needed.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	g := v.m[value]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.m[value]; g == nil {
		g = &Gauge{}
		v.m[value] = g
	}
	return g
}

// Values returns a copy of the children's current values by label value.
func (v *GaugeVec) Values() map[string]int64 {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.m))
	for k, g := range v.m {
		out[k] = g.Value()
	}
	return out
}

// metricKind discriminates registry entries for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterVec
	kindGaugeVec
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterVec:
		return "counter"
	case kindGauge, kindGaugeVec:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is one registered name with its typed handle (exactly one of the
// pointers is set, per kind).
type metric struct {
	name string
	help string
	kind metricKind

	counter    *Counter
	gauge      *Gauge
	histogram  *Histogram
	counterVec *CounterVec
	gaugeVec   *GaugeVec
}

// Registry holds named metrics and renders them for scrapes. The zero value
// is not usable; a nil *Registry is the documented disabled state: every
// constructor on it returns a nil handle whose methods are no-ops.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// register returns the existing metric for name or inserts a new one built
// by mk. Re-registering a name with a different kind is a programming
// error and panics — two packages fighting over one name would otherwise
// silently split their counts.
func (r *Registry) register(name, help string, kind metricKind, mk func(*metric)) *metric {
	if !nameRE.MatchString(name) {
		//lint:ignore todo-panic registration-time programmer error, caught by TestMetricNames before release
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			//lint:ignore todo-panic kind conflicts silently split counts; failing loudly at startup is the contract
			panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	mk(m)
	r.byName[name] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter returns the named counter, registering it on first use. On a nil
// registry it returns nil, a valid no-op counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, func(m *metric) { m.counter = &Counter{} }).counter
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, func(m *metric) { m.gauge = &Gauge{} }).gauge
}

// Histogram returns the named histogram, registering it on first use with
// the given bucket upper bounds (they must be sorted ascending; an implicit
// +Inf bucket is appended). Buckets are fixed at first registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindHistogram, func(m *metric) {
		if len(buckets) == 0 {
			buckets = LatencyBuckets
		}
		if !sort.Float64sAreSorted(buckets) {
			//lint:ignore todo-panic registration-time programmer error; unsorted bounds corrupt every scrape
			panic(fmt.Sprintf("obs: histogram %q buckets are not sorted", name))
		}
		bounds := append([]float64(nil), buckets...)
		m.histogram = &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	}).histogram
}

// CounterVec returns the named one-label counter family, registering it on
// first use.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	if !nameRE.MatchString(label) {
		//lint:ignore todo-panic registration-time programmer error, same contract as register
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	return r.register(name, help, kindCounterVec, func(m *metric) {
		m.counterVec = &CounterVec{label: label, m: make(map[string]*Counter)}
	}).counterVec
}

// GaugeVec returns the named one-label gauge family, registering it on
// first use.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if r == nil {
		return nil
	}
	if !nameRE.MatchString(label) {
		//lint:ignore todo-panic registration-time programmer error, same contract as register
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	return r.register(name, help, kindGaugeVec, func(m *metric) {
		m.gaugeVec = &GaugeVec{label: label, m: make(map[string]*Gauge)}
	}).gaugeVec
}

// Names returns the registered metric names in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.metrics))
	for i, m := range r.metrics {
		out[i] = m.name
	}
	return out
}

// snapshotMetrics copies the metric list under the lock so scrapes read a
// stable set while registrations continue.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metric(nil), r.metrics...)
}
