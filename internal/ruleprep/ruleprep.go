// Package ruleprep implements obfuscated rule encryption (§3.3 of the
// paper): the exchange by which the middlebox obtains AES_k(r) for every
// RG-authorized rule fragment r, without learning the session key k and
// without the endpoints learning the rules.
//
// Per fragment, both endpoints deterministically garble the function F
// (circuit.BuildRuleEncrypt) using shared randomness derived from krand;
// the middlebox checks the two garbled circuits are identical, obtains the
// input labels for its fragment and RG-tag bits by oblivious transfer (from
// each endpoint, again cross-checked), and evaluates the circuit to obtain
// the fragment's DPIEnc token key.
//
// Garbling dominates connection setup cost; the work is embarrassingly
// parallel across fragments, mirroring the paper's "garble threads" (§6).
package ruleprep

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/bbcrypto"
	"repro/internal/circuit"
	"repro/internal/dpienc"
	"repro/internal/garble"
	"repro/internal/obs"
	"repro/internal/ot"
)

// FixedGarblingKey is the public fixed key of the garbling hash. It need
// not be secret; all parties must agree on it.
var FixedGarblingKey = bbcrypto.Block{'b', 'l', 'i', 'n', 'd', 'b', 'o', 'x', 'g', 'a', 'r', 'b', 'l', 'e', '0', '1'}

// Circuit caches the rule-encryption circuit, which every connection
// reuses (only the garbling randomness differs).
var (
	circOnce sync.Once
	circF    *circuit.Circuit
)

// F returns the shared rule-encryption circuit (built once per process).
func F() *circuit.Circuit {
	circOnce.Do(func() { circF = circuit.BuildRuleEncrypt(circuit.SBoxGF) })
	return circF
}

// otWires is the number of input wires the middlebox chooses via OT per
// fragment: the fragment block x (128) plus RG's tag (128).
const otWires = 256

// FragmentJob is one endpoint-side garbling result for one fragment index.
type FragmentJob struct {
	// Index is the fragment's position in the middlebox's rule list.
	Index int
	// G is the garbled circuit shipped to the middlebox.
	G *garble.Garbled
	// EndpointLabels are the labels for the endpoint-held inputs (k and
	// kRG bits), in wire order, handed to the middlebox directly.
	EndpointLabels []bbcrypto.Block
	// otPairs are the label pairs of the OT-transferred wires (x, tag).
	//bb:secret
	otPairs [][2]bbcrypto.Block
}

// OTPairs exposes the fragment's OT sender inputs.
func (j *FragmentJob) OTPairs() [][2]bbcrypto.Block { return j.otPairs }

// NewFragmentJob reconstructs a middlebox-side view of a fragment job from
// wire data (the garbled circuit and endpoint labels received from an
// endpoint). The OT pairs stay with the endpoint; the middlebox never
// holds them.
func NewFragmentJob(index int, g *garble.Garbled, endpointLabels []bbcrypto.Block) *FragmentJob {
	return &FragmentJob{Index: index, G: g, EndpointLabels: endpointLabels}
}

// Endpoint is one endpoint's (S or R) state for a rule-preparation run.
type Endpoint struct {
	circ *circuit.Circuit
	//bb:secret
	k bbcrypto.Block
	//bb:secret
	kRG bbcrypto.Block
	//bb:secret
	krand bbcrypto.Block

	trace  obs.Sink
	tctx   obs.SpanCtx
	tflow  uint64
	tparty string
}

// SetTrace attaches a span sink to the endpoint: every subsequent Garble
// call emits one prep.garble span parented to ctx (the endpoint's
// handshake span), sized by the circuit's AND gates, garbled rows and
// wire bytes. Call it before GarbleAll; Garble itself may then run
// concurrently, since span-ID allocation and sinks are concurrency-safe.
func (e *Endpoint) SetTrace(sink obs.Sink, ctx obs.SpanCtx, flow uint64, party string) {
	e.trace, e.tctx, e.tflow, e.tparty = sink, ctx, flow, party
}

// NewEndpoint creates an endpoint-side session. k is the session detection
// key, kRG the rule generator's tag key from the installed RG
// configuration, and krand the shared randomness seed from the handshake.
func NewEndpoint(k, kRG, krand bbcrypto.Block) *Endpoint {
	return &Endpoint{circ: F(), k: k, kRG: kRG, krand: krand}
}

// seed derives the deterministic garbling seed for fragment i. Both
// endpoints hold krand, so they derive equal seeds and hence produce
// bit-identical garbled circuits.
func (e *Endpoint) seed(i int) bbcrypto.Block {
	return bbcrypto.DeriveBlock(e.krand[:], fmt.Sprintf("blindbox ruleprep %d", i))
}

// Garble produces the fragment job for index i.
func (e *Endpoint) Garble(i int) (*FragmentJob, error) {
	start := time.Now()
	g, labels, err := garble.Garble(e.circ, FixedGarblingKey, bbcrypto.NewPRG(e.seed(i)))
	if err != nil {
		return nil, err
	}
	if e.trace != nil {
		st := g.Stats()
		sp := obs.Span{
			Flow:  e.tflow,
			Party: e.tparty,
			Name:  obs.SpanPrepGarble,
			Start: start.UnixNano(),
			Dur:   time.Since(start).Nanoseconds(),
			Gates: st.Gates,
			Rows:  st.TableRows,
			Bytes: st.WireBytes,
		}
		e.tctx.Child().Stamp(&sp)
		e.trace.Emit(sp)
	}
	job := &FragmentJob{Index: i, G: g}

	kBits := circuit.BytesToBits(e.k[:])
	kRGBits := circuit.BytesToBits(e.kRG[:])
	job.EndpointLabels = make([]bbcrypto.Block, 0, 256)
	for b := 0; b < 128; b++ {
		job.EndpointLabels = append(job.EndpointLabels, labels.For(circuit.RuleEncryptKOff+b, kBits[b]))
	}
	for b := 0; b < 128; b++ {
		job.EndpointLabels = append(job.EndpointLabels, labels.For(circuit.RuleEncryptKRGOff+b, kRGBits[b]))
	}

	job.otPairs = make([][2]bbcrypto.Block, 0, otWires)
	for b := 0; b < 128; b++ {
		l0, l1 := labels.Pair(circuit.RuleEncryptXOff + b)
		job.otPairs = append(job.otPairs, [2]bbcrypto.Block{l0, l1})
	}
	for b := 0; b < 128; b++ {
		l0, l1 := labels.Pair(circuit.RuleEncryptTagOff + b)
		job.otPairs = append(job.otPairs, [2]bbcrypto.Block{l0, l1})
	}
	return job, nil
}

// GarbleAll garbles every fragment index in [0, n) using all cores.
func (e *Endpoint) GarbleAll(n int) ([]*FragmentJob, error) {
	jobs := make([]*FragmentJob, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			jobs[i], errs[i] = e.Garble(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return jobs, nil
}

// Request is what the middlebox asks the endpoints to prepare: one entry
// per rule fragment, consisting of the fragment block and RG's tag for it.
// The endpoints never see this; it parameterizes only the middlebox side.
type Request struct {
	Fragments []bbcrypto.Block
	Tags      []bbcrypto.Block
}

// Middlebox is the MB-side state of a rule-preparation run.
type Middlebox struct {
	circ *circuit.Circuit
	req  Request

	trace obs.Sink
	tctx  obs.SpanCtx
	tflow uint64
}

// SetTrace attaches a span sink to the middlebox session: every
// subsequent VerifyAndEvaluate emits one prep.rule_enc span parented to
// ctx (the middlebox's prep span).
func (m *Middlebox) SetTrace(sink obs.Sink, ctx obs.SpanCtx, flow uint64) {
	m.trace, m.tctx, m.tflow = sink, ctx, flow
}

// NewMiddlebox creates the MB session for the given rule fragments.
func NewMiddlebox(req Request) (*Middlebox, error) {
	if len(req.Fragments) != len(req.Tags) {
		return nil, errors.New("ruleprep: fragments and tags must align")
	}
	return &Middlebox{circ: F(), req: req}, nil
}

// NumFragments returns N, which MB announces to the endpoints (§3.3 step 1).
func (m *Middlebox) NumFragments() int { return len(m.req.Fragments) }

// CircuitANDs returns the AND-gate count of the rule-encryption circuit F
// — the gate counter trace spans covering circuit construction carry.
func (m *Middlebox) CircuitANDs() int { return m.circ.NumAND() }

// Choices returns MB's OT choice bits for fragment i: the bits of the
// fragment block followed by the bits of its tag.
func (m *Middlebox) Choices(i int) []bool {
	out := make([]bool, 0, otWires)
	out = append(out, circuit.BytesToBits(m.req.Fragments[i][:])...)
	out = append(out, circuit.BytesToBits(m.req.Tags[i][:])...)
	return out
}

// Verify cross-checks the two endpoints' jobs for fragment i: identical
// garbled circuits and identical endpoint labels. Since at least one
// endpoint is honest (§2.2.2), equality proves correctness.
func (m *Middlebox) Verify(jobS, jobR *FragmentJob) error {
	if jobS.Index != jobR.Index {
		return errors.New("ruleprep: job index mismatch")
	}
	if !garble.Equal(jobS.G, jobR.G) {
		return errors.New("ruleprep: endpoints disagree on garbled circuit")
	}
	if len(jobS.EndpointLabels) != len(jobR.EndpointLabels) {
		return errors.New("ruleprep: endpoint label count mismatch")
	}
	for b := range jobS.EndpointLabels {
		if subtle.ConstantTimeCompare(jobS.EndpointLabels[b][:], jobR.EndpointLabels[b][:]) != 1 {
			return errors.New("ruleprep: endpoints disagree on input labels")
		}
	}
	return nil
}

// ErrUnauthorized is returned when the circuit outputs ⊥ (all zeros): the
// fragment's tag did not verify, i.e. RG never authorized this keyword.
var ErrUnauthorized = errors.New("ruleprep: fragment not authorized by rule generator")

// Evaluate runs the garbled circuit for fragment i given the OT-received
// labels (x then tag wires) and the endpoint-held labels (k then kRG
// wires), returning the fragment's DPIEnc token key AES_k(x).
func (m *Middlebox) Evaluate(i int, job *FragmentJob, otLabels []bbcrypto.Block) (dpienc.TokenKey, error) {
	if len(otLabels) != otWires {
		return dpienc.TokenKey{}, errors.New("ruleprep: wrong OT label count")
	}
	if len(job.EndpointLabels) != 256 {
		return dpienc.TokenKey{}, errors.New("ruleprep: wrong endpoint label count")
	}
	in := make([]bbcrypto.Block, m.circ.NInputs)
	copy(in[circuit.RuleEncryptXOff:], otLabels[:128])
	copy(in[circuit.RuleEncryptTagOff:], otLabels[128:])
	copy(in[circuit.RuleEncryptKOff:], job.EndpointLabels[:128])
	copy(in[circuit.RuleEncryptKRGOff:], job.EndpointLabels[128:])
	bits, err := garble.Eval(m.circ, job.G, in)
	if err != nil {
		return dpienc.TokenKey{}, err
	}
	var key, bottom dpienc.TokenKey
	copy(key[:], circuit.BitsToBytes(bits))
	if subtle.ConstantTimeCompare(key[:], bottom[:]) == 1 {
		return dpienc.TokenKey{}, ErrUnauthorized
	}
	return key, nil
}

// VerifyAndEvaluate performs the complete middlebox-side finishing work
// for fragment i — cross-checking the two endpoints' garbled circuits,
// cross-checking the labels each endpoint's OT delivered, and evaluating
// the circuit — and, when tracing, emits one prep.rule_enc span covering
// it. It is the single entry point the network middlebox and RunLocal
// share, so traces describe every deployment the same way.
func (m *Middlebox) VerifyAndEvaluate(i int, jobS, jobR *FragmentJob, labS, labR []bbcrypto.Block) (dpienc.TokenKey, error) {
	start := time.Now()
	key, err := m.verifyAndEvaluate(i, jobS, jobR, labS, labR)
	if m.trace != nil {
		st := jobS.G.Stats()
		sp := obs.Span{
			Flow:  m.tflow,
			Party: obs.PartyMB,
			Name:  obs.SpanPrepRuleEnc,
			Start: start.UnixNano(),
			Dur:   time.Since(start).Nanoseconds(),
			Gates: st.Gates,
			Rows:  st.TableRows,
			Bytes: st.WireBytes,
		}
		if err != nil && err != ErrUnauthorized {
			sp.Err = err.Error()
		}
		m.tctx.Child().Stamp(&sp)
		m.trace.Emit(sp)
	}
	return key, err
}

// verifyAndEvaluate is VerifyAndEvaluate without the tracing wrapper.
func (m *Middlebox) verifyAndEvaluate(i int, jobS, jobR *FragmentJob, labS, labR []bbcrypto.Block) (dpienc.TokenKey, error) {
	if err := m.Verify(jobS, jobR); err != nil {
		return dpienc.TokenKey{}, err
	}
	if len(labS) != len(labR) {
		return dpienc.TokenKey{}, errors.New("ruleprep: OT label count mismatch")
	}
	for b := range labS {
		if subtle.ConstantTimeCompare(labS[b][:], labR[b][:]) != 1 {
			return dpienc.TokenKey{}, errors.New("ruleprep: endpoints disagree on OT labels")
		}
	}
	return m.Evaluate(i, jobS, labS)
}

// RunLocal performs the complete rule preparation with both endpoints in
// process — the building block for examples, benchmarks and the in-memory
// transport. It returns the token key for every fragment (nil entries for
// unauthorized fragments) and the number of bytes of garbled material that
// would cross the wire.
func RunLocal(epS, epR *Endpoint, mb *Middlebox) ([]*dpienc.TokenKey, int, error) {
	n := mb.NumFragments()
	jobsS, err := epS.GarbleAll(n)
	if err != nil {
		return nil, 0, err
	}
	jobsR, err := epR.GarbleAll(n)
	if err != nil {
		return nil, 0, err
	}
	bytesOnWire := 0
	keys := make([]*dpienc.TokenKey, n)
	for i := 0; i < n; i++ {
		bytesOnWire += jobsS[i].G.Size() + jobsR[i].G.Size()
		choices := mb.Choices(i)
		gotS, err := ot.ExtTransfer(jobsS[i].OTPairs(), choices)
		if err != nil {
			return nil, 0, err
		}
		gotR, err := ot.ExtTransfer(jobsR[i].OTPairs(), choices)
		if err != nil {
			return nil, 0, err
		}
		key, err := mb.VerifyAndEvaluate(i, jobsS[i], jobsR[i], gotS, gotR)
		if err == ErrUnauthorized {
			continue
		}
		if err != nil {
			return nil, 0, err
		}
		k := key
		keys[i] = &k
	}
	return keys, bytesOnWire, nil
}
