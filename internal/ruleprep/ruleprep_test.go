package ruleprep

import (
	"testing"

	"repro/internal/bbcrypto"
	"repro/internal/dpienc"
	"repro/internal/garble"
	"repro/internal/ot"
	"repro/internal/rules"
	"repro/internal/tokenize"
)

func fragBlock(s string) bbcrypto.Block {
	var f [tokenize.TokenSize]byte
	copy(f[:], s)
	return rules.FragmentBlock(f)
}

func setup(t *testing.T, frags []string) (*Endpoint, *Endpoint, *Middlebox, bbcrypto.Block, bbcrypto.Block) {
	t.Helper()
	k := bbcrypto.RandomBlock()
	kRG := bbcrypto.RandomBlock()
	krand := bbcrypto.RandomBlock()
	req := Request{}
	for _, f := range frags {
		blk := fragBlock(f)
		req.Fragments = append(req.Fragments, blk)
		req.Tags = append(req.Tags, bbcrypto.MAC(kRG, blk))
	}
	mb, err := NewMiddlebox(req)
	if err != nil {
		t.Fatal(err)
	}
	return NewEndpoint(k, kRG, krand), NewEndpoint(k, kRG, krand), mb, k, kRG
}

func TestRunLocalProducesCorrectTokenKeys(t *testing.T) {
	frags := []string{"maliciou", "iciously"}
	epS, epR, mb, k, _ := setup(t, frags)
	keys, wireBytes, err := RunLocal(epS, epR, mb)
	if err != nil {
		t.Fatal(err)
	}
	if wireBytes <= 0 {
		t.Fatal("no garbled bytes accounted")
	}
	for i, f := range frags {
		if keys[i] == nil {
			t.Fatalf("fragment %q: no key", f)
		}
		var tok [tokenize.TokenSize]byte
		copy(tok[:], f)
		want := dpienc.ComputeTokenKey(k, tok)
		if *keys[i] != want {
			t.Fatalf("fragment %q: got %x want %x", f, *keys[i], want)
		}
	}
}

func TestUnauthorizedFragmentRejected(t *testing.T) {
	// MB tries to get AES_k for a fragment RG never tagged: the circuit
	// must output ⊥.
	epS, epR, mb, _, _ := setup(t, []string{"autherok"})
	// Corrupt the tag.
	mb.req.Tags[0][0] ^= 1
	keys, _, err := RunLocal(epS, epR, mb)
	if err != nil {
		t.Fatal(err)
	}
	if keys[0] != nil {
		t.Fatal("unauthorized fragment produced a token key")
	}
}

func TestMismatchedEndpointsDetected(t *testing.T) {
	// A malicious endpoint garbling with different randomness (or a
	// different key) is caught by the §3.3 equality check.
	k := bbcrypto.RandomBlock()
	kRG := bbcrypto.RandomBlock()
	honest := NewEndpoint(k, kRG, bbcrypto.Block{1})
	cheat := NewEndpoint(k, kRG, bbcrypto.Block{2}) // wrong randomness
	req := Request{
		Fragments: []bbcrypto.Block{fragBlock("somefrag")},
		Tags:      []bbcrypto.Block{bbcrypto.MAC(kRG, fragBlock("somefrag"))},
	}
	mb, err := NewMiddlebox(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunLocal(honest, cheat, mb); err == nil {
		t.Fatal("mismatched garbling not detected")
	}

	// A cheating endpoint substituting its own session key is also caught:
	// the garbled circuits are equal only if k, kRG and krand all agree.
	cheat2 := NewEndpoint(bbcrypto.RandomBlock(), kRG, bbcrypto.Block{1})
	mb2, _ := NewMiddlebox(req)
	jobH, err := honest.Garble(0)
	if err != nil {
		t.Fatal(err)
	}
	jobC, err := cheat2.Garble(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := mb2.Verify(jobH, jobC); err == nil {
		t.Fatal("endpoint with different k not detected (labels must differ)")
	}
}

func TestMiddleboxNeverLearnsK(t *testing.T) {
	// Structural check: the data MB receives (garbled circuit, endpoint
	// labels, OT-chosen labels) must not contain k in the clear. We verify
	// the chosen labels differ from the raw key bits' labels' XOR pattern —
	// i.e. k cannot be read off the transcript. (True cryptographic
	// indistinguishability is the garbling scheme's guarantee; here we
	// assert the obvious leaks are absent.)
	epS, _, mb, k, _ := setup(t, []string{"fragment"})
	job, err := epS.Garble(0)
	if err != nil {
		t.Fatal(err)
	}
	blob := job.G.Marshal()
	for i := 0; i+len(k) <= len(blob); i++ {
		match := true
		for j := range k {
			if blob[i+j] != k[j] {
				match = false
				break
			}
		}
		if match {
			t.Fatal("raw session key found inside garbled circuit bytes")
		}
	}
	_ = mb
}

func TestRequestValidation(t *testing.T) {
	_, err := NewMiddlebox(Request{Fragments: make([]bbcrypto.Block, 2), Tags: make([]bbcrypto.Block, 1)})
	if err == nil {
		t.Fatal("misaligned request accepted")
	}
}

func TestEvaluateInputValidation(t *testing.T) {
	epS, _, mb, _, _ := setup(t, []string{"fragment"})
	job, err := epS.Garble(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mb.Evaluate(0, job, make([]bbcrypto.Block, 3)); err == nil {
		t.Fatal("short OT labels accepted")
	}
	bad := *job
	bad.EndpointLabels = bad.EndpointLabels[:10]
	choices := mb.Choices(0)
	got, err := ot.ExtTransfer(job.OTPairs(), choices)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mb.Evaluate(0, &bad, got); err == nil {
		t.Fatal("short endpoint labels accepted")
	}
}

func TestDeterministicAcrossEndpoints(t *testing.T) {
	// Both endpoints' jobs must be byte-identical for the same index and
	// differ across indices (fresh circuit per rule, §3.3).
	epS, epR, _, _, _ := setup(t, []string{"fragmen1", "fragmen2"})
	s0, err := epS.Garble(0)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := epR.Garble(0)
	if err != nil {
		t.Fatal(err)
	}
	if !garble.Equal(s0.G, r0.G) {
		t.Fatal("same index produced different circuits across endpoints")
	}
	s1, err := epS.Garble(1)
	if err != nil {
		t.Fatal(err)
	}
	if garble.Equal(s0.G, s1.G) {
		t.Fatal("different indices must produce fresh garbled circuits")
	}
}
