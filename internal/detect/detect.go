// Package detect implements the BlindBox Detect protocol (§3.2) and the
// rule-evaluation layers on top of it: Protocol I single-keyword matching,
// Protocol II multi-keyword rules with offset constraints (§4), and
// Protocol III probable-cause SSL-key recovery (§5).
//
// The engine's per-token work is a single search-structure lookup, the same
// cost as inspecting unencrypted traffic; per-rule-fragment counters make
// the implicit counter salts of the sender reproducible at the middlebox.
package detect

import (
	"fmt"

	"repro/internal/bbcrypto"
	"repro/internal/dpienc"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/tokenize"
)

// TokenKeys maps padded fragment blocks to AES_k(fragment). The middlebox
// obtains this map via obfuscated rule encryption (internal/ruleprep); it
// never holds k itself.
type TokenKeys map[bbcrypto.Block]dpienc.TokenKey

// EventKind distinguishes the two detection events the engine reports.
type EventKind int

const (
	// KeywordMatch fires when all fragments of one rule keyword have been
	// observed at consistent offsets. The middlebox learns keyword matches
	// even when the enclosing rule does not fully match (§4, security
	// guarantee is per keyword).
	KeywordMatch EventKind = iota
	// RuleMatch fires when every keyword of a rule has matched and the
	// rule's offset constraints are satisfiable.
	RuleMatch
)

// Event is one detection result.
type Event struct {
	Kind EventKind
	// Rule is the matched rule.
	Rule *rules.Rule
	// KeywordIndex identifies which content of the rule matched (for
	// KeywordMatch events).
	KeywordIndex int
	// Offset is the stream offset of the (keyword) match.
	Offset int
	// SSLKey is the recovered kSSL under Protocol III (zero otherwise).
	//bb:secret
	SSLKey bbcrypto.Block
	// HasSSLKey reports whether SSLKey is valid.
	HasSSLKey bool
}

// entry is the per-fragment detection state: the §3.2 counter ct* and the
// precomputed encryption under the current expected salt.
type entry struct {
	frag bbcrypto.Block
	tk   dpienc.TokenKey
	ct   uint64
	cur  dpienc.Ciphertext
	refs []fragRef
}

type fragRef struct {
	kw  *keywordState
	idx int
}

// keywordState assembles fragment sightings into keyword matches.
type keywordState struct {
	rule    *compiledRule
	kwIdx   int
	content *rules.Content
	rel     []int
	nFrags  int
	// missing is true when some fragment could not be compiled (keyword
	// uncoverable under the tokenization mode) — the keyword can never
	// match, contributing to the documented detection loss.
	missing bool

	// cands maps candidate keyword start offset -> bitmap of fragment
	// indices observed there.
	cands map[int]uint64
	// matchOffsets records starts of complete keyword matches (bounded).
	matchOffsets []int
}

const maxMatchOffsets = 64

// compiledRule tracks rule-level progress.
type compiledRule struct {
	rule     *rules.Rule
	keywords []*keywordState
	alerted  bool
}

// Config configures an Engine.
type Config struct {
	// Mode is the tokenization mode the sender uses; fragment compilation
	// must mirror it.
	Mode tokenize.Mode
	// Protocol selects salt stride and Protocol III key recovery.
	Protocol dpienc.Protocol
	// Salt0 is the initial salt announced by the sender.
	Salt0 uint64
	// Index is the search structure; nil defaults to NewTreeIndex()
	// (the paper's logarithmic structure).
	Index Index
}

// Engine is the middlebox-side detection state for one connection.
type Engine struct {
	cfg     Config
	salt0   uint64
	stride  uint64
	index   Index
	entries map[bbcrypto.Block]*entry
	order   []*entry
	crules  []*compiledRule

	// filter/filterMask form a counting prefilter over the low bits of
	// the current fragment ciphertexts: filter[c & filterMask] is how
	// many live entries hash to that slot. The overwhelmingly common
	// per-token outcome is "no fragment matches", and the filter decides
	// it with one array load instead of a search-structure lookup (~11
	// pointer chases in the paper's tree at 3000 fragments) — the
	// fastest check runs first. uint16 counters cannot realistically
	// saturate (that would need 65k fragments sharing one slot).
	filter     []uint16
	filterMask uint64

	// tokensSeen counts processed tokens, for throughput accounting.
	tokensSeen uint64
	// pruneWatermark drives candidate-map pruning.
	pruneWatermark int

	// tokensC/eventsC are nil until Instrument; uninstrumented engines pay
	// only a nil check per batch.
	tokensC *obs.Counter
	eventsC *obs.Counter
}

// Instrument registers this engine's token and event counters in r (see
// obs.DetectTokensTotal, obs.DetectEventsTotal). Counts are added at batch
// granularity, so instrumentation stays off the per-token path. A nil
// registry leaves the engine uninstrumented.
func (e *Engine) Instrument(r *obs.Registry) {
	e.tokensC = r.Counter(obs.DetectTokensTotal, obs.Help(obs.DetectTokensTotal))
	e.eventsC = r.Counter(obs.DetectEventsTotal, obs.Help(obs.DetectEventsTotal))
}

// NewEngine compiles a ruleset against the token keys obtained from rule
// preparation. Fragments absent from keys leave their keywords unmatchable
// (this is how uncoverable keywords and withheld authorizations degrade,
// rather than break, detection).
func NewEngine(rs *rules.Ruleset, keys TokenKeys, cfg Config) *Engine {
	if cfg.Index == nil {
		cfg.Index = NewTreeIndex()
	}
	e := &Engine{
		cfg:     cfg,
		salt0:   cfg.Salt0,
		stride:  1,
		index:   cfg.Index,
		entries: make(map[bbcrypto.Block]*entry),
	}
	if cfg.Protocol == dpienc.ProtocolIII {
		e.stride = 2
	}
	for _, r := range rs.Rules {
		cr := &compiledRule{rule: r}
		for ki := range r.Contents {
			content := &r.Contents[ki]
			ks := &keywordState{
				rule:    cr,
				kwIdx:   ki,
				content: content,
				cands:   make(map[int]uint64),
			}
			frags, rel := tokenize.SplitKeyword(cfg.Mode, content.Pattern)
			if len(frags) == 0 || len(frags) > 64 {
				ks.missing = true
			} else {
				ks.rel = rel
				ks.nFrags = len(frags)
				for idx, f := range frags {
					blk := rules.FragmentBlock(f)
					tk, ok := keys[blk]
					if !ok {
						ks.missing = true
						break
					}
					ent := e.entries[blk]
					if ent == nil {
						ent = &entry{frag: blk, tk: tk}
						ent.cur = dpienc.Encrypt(tk, e.salt0)
						e.entries[blk] = ent
						e.order = append(e.order, ent)
					}
					ent.refs = append(ent.refs, fragRef{kw: ks, idx: idx})
				}
			}
			cr.keywords = append(cr.keywords, ks)
		}
		e.crules = append(e.crules, cr)
	}
	e.index.Rebuild(e.order)
	e.rebuildFilter()
	return e
}

// rebuildFilter sizes the prefilter to keep its load factor low (~1/16
// occupied slots, so ~94% of non-matching tokens early-exit on the first
// load) and repopulates it from the current entry ciphertexts. Slot count
// is clamped to [2^10, 2^17] — at most 256 KiB per engine, small next to
// the entry map and candidate state it fronts.
func (e *Engine) rebuildFilter() {
	bits := 10
	for bits < 17 && 1<<bits < 16*len(e.order) {
		bits++
	}
	if e.filter == nil || len(e.filter) != 1<<bits {
		e.filter = make([]uint16, 1<<bits)
	} else {
		clear(e.filter)
	}
	e.filterMask = uint64(len(e.filter) - 1)
	for _, ent := range e.order {
		e.filter[ent.cur.Uint64()&e.filterMask]++
	}
}

// NumFragments reports how many distinct fragments the engine searches for.
func (e *Engine) NumFragments() int { return len(e.order) }

// TokensSeen reports how many tokens have been processed.
func (e *Engine) TokensSeen() uint64 { return e.tokensSeen }

// Reset re-synchronizes with a sender counter-table reset (§3.2): all
// fragment counters restart at zero under the announced salt0.
func (e *Engine) Reset(salt0 uint64) {
	e.salt0 = salt0
	for _, ent := range e.order {
		ent.ct = 0
		ent.cur = dpienc.Encrypt(ent.tk, salt0)
	}
	e.index.Rebuild(e.order)
	e.rebuildFilter()
}

// ProcessToken runs one encrypted token through BlindBox Detect and returns
// any detection events. Tokens must be processed in stream order. For batch
// workloads prefer ScanBatch, which amortizes call overhead and reuses the
// caller's event buffer; ProcessToken allocates its result slice only when
// events actually fire.
func (e *Engine) ProcessToken(et dpienc.EncryptedToken) []Event {
	e.tokensSeen++
	evs := e.scanToken(et, nil)
	e.maybePrune(et.Offset)
	e.tokensC.Inc()
	e.eventsC.Add(uint64(len(evs)))
	return evs
}

// ScanBatch runs a batch of encrypted tokens (in stream order) through the
// engine, appending detection events to dst and returning the extended
// slice. Events appear in the same stream-offset order per-token Scan
// (ProcessToken) would produce.
//
// Allocation contract: 0 allocs/op steady-state — passing dst with spare
// capacity (typically a buffer reused across batches, truncated with
// dst[:0]) makes the hot path allocation-free; token counting, candidate
// pruning, and instrumentation run once per batch, not per token.
func (e *Engine) ScanBatch(ets []dpienc.EncryptedToken, dst []Event) []Event {
	before := len(dst)
	for i := range ets {
		dst = e.scanToken(ets[i], dst)
	}
	if n := len(ets); n > 0 {
		// Bookkeeping hoisted out of the per-token path: the counter is
		// batch-granular anyway, and pruning from the batch's last offset
		// is equivalent — a candidate completing within this batch is at
		// most a keyword length (≪ the 64 KiB horizon) behind it.
		e.tokensSeen += uint64(n)
		e.maybePrune(ets[n-1].Offset)
	}
	e.tokensC.Add(uint64(len(ets)))
	e.eventsC.Add(uint64(len(dst) - before))
	return dst
}

// scanToken is the per-token §3.2 step shared by ProcessToken and
// ScanBatch; it appends events to dst. Checks run fastest-first: the
// prefilter load rejects almost every token before the search-structure
// lookup, which in turn runs before any counter/candidate work.
//
//bb:hotpath
func (e *Engine) scanToken(et dpienc.EncryptedToken, dst []Event) []Event {
	if e.filter[et.C1.Uint64()&e.filterMask] == 0 {
		return dst
	}
	hits := e.index.Lookup(et.C1)
	if len(hits) == 0 {
		return dst
	}
	for _, ent := range hits {
		// §3.2 steps 1.1.2–1.1.3: advance the counter, re-encrypt, and
		// replace the node in the search structure and prefilter.
		saltUsed := e.salt0 + ent.ct
		old := ent.cur
		ent.ct += e.stride
		ent.cur = dpienc.Encrypt(ent.tk, e.salt0+ent.ct)
		e.index.Update(ent, old, ent.cur)
		e.filter[old.Uint64()&e.filterMask]--
		e.filter[ent.cur.Uint64()&e.filterMask]++

		for _, ref := range ent.refs {
			dst = e.recordFragment(ref, ent, et, saltUsed, dst)
		}
	}
	return dst
}

// recordFragment folds one fragment sighting into keyword and rule state,
// appending resulting events to dst.
func (e *Engine) recordFragment(ref fragRef, ent *entry, et dpienc.EncryptedToken, saltUsed uint64, dst []Event) []Event {
	ks := ref.kw
	start := et.Offset - ks.rel[ref.idx]
	if start < 0 {
		return dst
	}
	bits := ks.cands[start] | 1<<uint(ref.idx)
	ks.cands[start] = bits
	if bits != (uint64(1)<<uint(ks.nFrags))-1 {
		return dst
	}
	delete(ks.cands, start)
	if len(ks.matchOffsets) < maxMatchOffsets {
		ks.matchOffsets = append(ks.matchOffsets, start)
	}
	ev := Event{
		Kind:         KeywordMatch,
		Rule:         ks.rule.rule,
		KeywordIndex: ks.kwIdx,
		Offset:       start,
	}
	if e.cfg.Protocol == dpienc.ProtocolIII {
		// Probable cause: a keyword matched, so the middlebox may recover
		// kSSL from the C2 of the token that completed the match (§5).
		ev.SSLKey = dpienc.RecoverSSLKey(ent.tk, saltUsed, et.C2)
		ev.HasSSLKey = true
	}
	dst = append(dst, ev)
	if !ks.rule.alerted && e.ruleSatisfied(ks.rule) {
		ks.rule.alerted = true
		rev := Event{Kind: RuleMatch, Rule: ks.rule.rule, Offset: start}
		if ev.HasSSLKey {
			rev.SSLKey, rev.HasSSLKey = ev.SSLKey, true
		}
		dst = append(dst, rev)
	}
	return dst
}

// ruleSatisfied reports whether every keyword of the rule has a match
// assignment satisfying the rule's offset, depth, distance and within
// constraints (§4). Match lists are small (bounded), so a depth-first
// search over assignments is cheap.
func (e *Engine) ruleSatisfied(cr *compiledRule) bool {
	for _, ks := range cr.keywords {
		if ks.missing || len(ks.matchOffsets) == 0 {
			return false
		}
	}
	return assign(cr.keywords, 0, -1)
}

// assign finds starts for keywords[i:] given the end offset of the previous
// keyword match (prevEnd; -1 for the first keyword).
func assign(kws []*keywordState, i, prevEnd int) bool {
	if i == len(kws) {
		return true
	}
	ks := kws[i]
	c := ks.content
	for _, start := range ks.matchOffsets {
		if start < c.Offset {
			continue
		}
		if c.Depth >= 0 && start+len(c.Pattern) > c.Offset+c.Depth {
			continue
		}
		if prevEnd >= 0 && (c.Distance >= 0 || c.Within >= 0) {
			// Relative constraints chain to the previous content match;
			// contents without them may match anywhere.
			gap := start - prevEnd
			if gap < 0 {
				continue
			}
			if c.Distance >= 0 && gap < c.Distance {
				continue
			}
			// Snort `within`: this content must end within Within bytes
			// of the previous match's end.
			if c.Within >= 0 && gap+len(c.Pattern) > c.Within {
				continue
			}
		}
		if assign(kws, i+1, start+len(c.Pattern)) {
			return true
		}
	}
	return false
}

// maybePrune discards stale keyword-start candidates far behind the stream
// position, bounding memory on long flows. Keywords are at most a few
// hundred bytes, so a 64 KiB horizon is generous.
func (e *Engine) maybePrune(offset int) {
	const horizon = 64 << 10
	if offset < e.pruneWatermark+horizon {
		return
	}
	e.pruneWatermark = offset
	cut := offset - horizon
	for _, cr := range e.crules {
		for _, ks := range cr.keywords {
			for start := range ks.cands {
				if start < cut {
					delete(ks.cands, start)
				}
			}
		}
	}
}

// Stats summarizes per-connection detection state.
type Stats struct {
	Fragments  int
	Tokens     uint64
	RulesTotal int
	RulesFired int
}

// Stats returns detection statistics.
func (e *Engine) Stats() Stats {
	s := Stats{Fragments: len(e.order), Tokens: e.tokensSeen, RulesTotal: len(e.crules)}
	for _, cr := range e.crules {
		if cr.alerted {
			s.RulesFired++
		}
	}
	return s
}

// String implements fmt.Stringer for debugging.
func (e *Engine) String() string {
	s := e.Stats()
	return fmt.Sprintf("detect.Engine{frags=%d tokens=%d rules=%d fired=%d}",
		s.Fragments, s.Tokens, s.RulesTotal, s.RulesFired)
}

// DebugCounters exposes per-fragment hit counters for diagnostics and
// tests: fragment text (trimmed of padding) -> occurrences matched so far.
func (e *Engine) DebugCounters() map[string]uint64 {
	out := make(map[string]uint64)
	for _, ent := range e.order {
		if ent.ct > 0 {
			out[string(ent.frag[:tokenize.TokenSize])] = ent.ct
		}
	}
	return out
}
