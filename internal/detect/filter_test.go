package detect

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bbcrypto"
	"repro/internal/dpienc"
	"repro/internal/rules"
	"repro/internal/tokenize"
)

// filterHarness builds a sender/engine pair over a generated ruleset, the
// same way ruleprep would, but with direct token keys.
func filterHarness(t *testing.T, nRules int, proto dpienc.Protocol) (*dpienc.Sender, *Engine, []string) {
	t.Helper()
	k := bbcrypto.DeriveBlock([]byte("filter-harness"), "k")
	kSSL := bbcrypto.DeriveBlock([]byte("filter-harness"), "kssl")
	var rs rules.Ruleset
	words := make([]string, 0, nRules)
	for i := 0; i < nRules; i++ {
		w := fmt.Sprintf("evil%04d", i) // exactly TokenSize bytes
		words = append(words, w)
		rs.Rules = append(rs.Rules, &rules.Rule{
			SID:      i + 1,
			Contents: []rules.Content{{Pattern: []byte(w), Offset: 0, Depth: -1, Distance: -1, Within: -1}},
		})
	}
	eng := NewEngine(&rs, keysFor(k, &rs, tokenize.Window),
		Config{Mode: tokenize.Window, Protocol: proto, Salt0: 3})
	return dpienc.NewSender(k, kSSL, proto, 3), eng, words
}

// filterPopulation recomputes what the prefilter should contain from the
// live entries and compares slot-by-slot.
func checkFilterConsistent(t *testing.T, e *Engine, when string) {
	t.Helper()
	want := make([]uint16, len(e.filter))
	for _, ent := range e.order {
		want[ent.cur.Uint64()&e.filterMask]++
	}
	for i := range want {
		if e.filter[i] != want[i] {
			t.Fatalf("%s: filter slot %d = %d, want %d", when, i, e.filter[i], want[i])
		}
	}
}

// TestFilterStaysConsistent pins the prefilter invariant — after any mix
// of matches, non-matches, and resets, every slot equals the number of
// live entries hashing to it (so the filter can never produce a false
// negative).
func TestFilterStaysConsistent(t *testing.T) {
	for _, proto := range []dpienc.Protocol{dpienc.ProtocolI, dpienc.ProtocolIII} {
		s, eng, words := filterHarness(t, 200, proto)
		checkFilterConsistent(t, eng, "after NewEngine")
		rng := rand.New(rand.NewSource(4))
		offset := 0
		for round := 0; round < 20; round++ {
			var toks []tokenize.Token
			for i := 0; i < 100; i++ {
				var tk tokenize.Token
				if rng.Intn(3) == 0 {
					copy(tk.Text[:], words[rng.Intn(len(words))])
				} else {
					copy(tk.Text[:], fmt.Sprintf("ben%05d", rng.Intn(1<<16)))
				}
				tk.Offset = offset
				offset += tokenize.TokenSize
				toks = append(toks, tk)
			}
			eng.ScanBatch(s.EncryptTokens(toks), nil)
			checkFilterConsistent(t, eng, fmt.Sprintf("proto %s round %d", proto, round))
		}
		s.Reset(99999)
		eng.Reset(99999)
		checkFilterConsistent(t, eng, "after Reset")
	}
}

// TestFilterDetectsThroughResets is the end-to-end guard for the
// fastest-first ordering: matches keep firing with the prefilter in
// front, including for repeated keywords (counter advances move entries
// across filter slots) and across counter resets.
func TestFilterDetectsThroughResets(t *testing.T) {
	s, eng, words := filterHarness(t, 50, dpienc.ProtocolII)
	var events []Event
	offset := 0
	emit := func(word string) {
		var tk tokenize.Token
		copy(tk.Text[:], word)
		tk.Offset = offset
		offset += tokenize.TokenSize
		events = eng.ScanBatch(s.EncryptTokens([]tokenize.Token{tk}), events)
	}
	for rep := 0; rep < 5; rep++ {
		emit(words[7])
	}
	s.Reset(123456)
	eng.Reset(123456)
	for rep := 0; rep < 5; rep++ {
		emit(words[7])
		emit("harmless")
	}
	matches := 0
	for _, ev := range events {
		if ev.Kind == KeywordMatch {
			matches++
		}
	}
	if matches != 10 {
		t.Fatalf("got %d keyword matches through the prefilter, want 10", matches)
	}
}

// TestEmptyEngineFilter pins the degenerate case: an engine with no
// coverable fragments rejects every token at the filter without touching
// the index.
func TestEmptyEngineFilter(t *testing.T) {
	eng := NewEngine(&rules.Ruleset{}, TokenKeys{}, Config{Mode: tokenize.Window, Protocol: dpienc.ProtocolI})
	k := bbcrypto.DeriveBlock([]byte("empty"), "k")
	s := dpienc.NewSender(k, bbcrypto.Block{}, dpienc.ProtocolI, 0)
	evs := eng.ScanBatch(s.EncryptTokens([]tokenize.Token{{Text: [8]byte{'x'}}}), nil)
	if len(evs) != 0 {
		t.Fatalf("empty engine produced %d events", len(evs))
	}
}
