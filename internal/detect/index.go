package detect

import (
	"repro/internal/dpienc"
)

// Index is the search structure BlindBox Detect keeps over the *current*
// expected ciphertext of every rule fragment (§3.2). Lookups happen once
// per traffic token; updates happen on matches (delete the old node,
// insert the re-salted one).
//
// The paper describes a search tree with logarithmic operations; TreeIndex
// implements one, and HashIndex is the O(1)-expected alternative the
// benchmarks compare it against (DESIGN.md ablation #1).
type Index interface {
	// Lookup returns the entries whose current ciphertext equals c.
	// Typically zero or one entry; more only on 40-bit collisions between
	// rule fragments.
	Lookup(c dpienc.Ciphertext) []*entry
	// Update re-indexes e after its expected ciphertext changed from old
	// to new (the §3.2 delete-then-insert step).
	Update(e *entry, old, new dpienc.Ciphertext)
	// Rebuild reconstructs the index from scratch (after a salt0 reset).
	Rebuild(entries []*entry)
	// Name identifies the implementation in benchmarks.
	Name() string
}

// HashIndex keys entries by their 40-bit ciphertext in a map.
type HashIndex struct {
	m map[uint64][]*entry
}

// NewHashIndex returns an empty HashIndex.
func NewHashIndex() *HashIndex { return &HashIndex{m: make(map[uint64][]*entry)} }

// Name implements Index.
func (h *HashIndex) Name() string { return "hash" }

// Lookup implements Index.
//
//bb:hotpath
func (h *HashIndex) Lookup(c dpienc.Ciphertext) []*entry { return h.m[c.Uint64()] }

// Update implements Index.
//
//bb:hotpath
func (h *HashIndex) Update(e *entry, old, new dpienc.Ciphertext) {
	h.remove(e, old.Uint64())
	//lint:ignore hotpath-alloc bucket slices reach steady-state capacity; re-appending a removed entry reuses the freed slot
	h.m[new.Uint64()] = append(h.m[new.Uint64()], e)
}

func (h *HashIndex) remove(e *entry, key uint64) {
	s := h.m[key]
	for i, x := range s {
		if x == e {
			s[i] = s[len(s)-1]
			s = s[:len(s)-1]
			break
		}
	}
	if len(s) == 0 {
		delete(h.m, key)
	} else {
		h.m[key] = s
	}
}

// Rebuild implements Index.
func (h *HashIndex) Rebuild(entries []*entry) {
	h.m = make(map[uint64][]*entry, len(entries))
	for _, e := range entries {
		k := e.cur.Uint64()
		h.m[k] = append(h.m[k], e)
	}
}

// TreeIndex is a binary search tree over the 40-bit ciphertexts — the
// logarithmic structure of §3.2. DPIEnc ciphertexts are outputs of a
// pseudorandom permutation, so keys are uniform and a plain (unbalanced)
// BST has expected logarithmic depth for search, insert and delete alike;
// no rebalancing machinery is needed.
type TreeIndex struct {
	root *treeNode
	size int
}

type treeNode struct {
	key         uint64
	entries     []*entry // usually one; >1 only on 40-bit collisions
	left, right *treeNode
}

// NewTreeIndex returns an empty TreeIndex.
func NewTreeIndex() *TreeIndex { return &TreeIndex{} }

// Name implements Index.
func (t *TreeIndex) Name() string { return "tree" }

// Len returns the number of indexed entries.
func (t *TreeIndex) Len() int { return t.size }

// Lookup implements Index.
func (t *TreeIndex) Lookup(c dpienc.Ciphertext) []*entry {
	key := c.Uint64()
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.entries
		}
	}
	return nil
}

// Update implements Index.
func (t *TreeIndex) Update(e *entry, old, new dpienc.Ciphertext) {
	t.delete(e, old.Uint64())
	t.insert(e, new.Uint64())
}

func (t *TreeIndex) insert(e *entry, key uint64) {
	t.size++
	pos := &t.root
	for *pos != nil {
		n := *pos
		switch {
		case key < n.key:
			pos = &n.left
		case key > n.key:
			pos = &n.right
		default:
			n.entries = append(n.entries, e)
			return
		}
	}
	*pos = &treeNode{key: key, entries: []*entry{e}}
}

func (t *TreeIndex) delete(e *entry, key uint64) {
	pos := &t.root
	for *pos != nil {
		n := *pos
		switch {
		case key < n.key:
			pos = &n.left
		case key > n.key:
			pos = &n.right
		default:
			for i, x := range n.entries {
				if x == e {
					n.entries[i] = n.entries[len(n.entries)-1]
					n.entries = n.entries[:len(n.entries)-1]
					t.size--
					break
				}
			}
			if len(n.entries) == 0 {
				t.removeNode(pos)
			}
			return
		}
	}
}

// removeNode unlinks the node at *pos using the standard BST deletion:
// leaf/one-child splice, or replace by in-order successor.
func (t *TreeIndex) removeNode(pos **treeNode) {
	n := *pos
	switch {
	case n.left == nil:
		*pos = n.right
	case n.right == nil:
		*pos = n.left
	default:
		// Find the minimum of the right subtree.
		succPos := &n.right
		for (*succPos).left != nil {
			succPos = &(*succPos).left
		}
		succ := *succPos
		*succPos = succ.right
		succ.left, succ.right = n.left, n.right
		*pos = succ
	}
}

// Rebuild implements Index.
func (t *TreeIndex) Rebuild(entries []*entry) {
	t.root = nil
	t.size = 0
	for _, e := range entries {
		t.insert(e, e.cur.Uint64())
	}
}
