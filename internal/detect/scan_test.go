package detect

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bbcrypto"
	"repro/internal/dpienc"
	"repro/internal/tokenize"
)

// scanCorpusKeywords are embedded into randomized traffic so the
// differential runs exercise real matches (single- and multi-fragment,
// multi-keyword rules) and not just misses.
var scanCorpusKeywords = []string{
	"attack01", "exfil-marker-long", "shorty", "evil.dll", "x-hdr: 1",
}

// synthScanTraffic builds one seeded traffic stream with keywords sprinkled
// at random positions.
func synthScanTraffic(rng *rand.Rand, n int) []byte {
	var buf bytes.Buffer
	words := []string{"the", "quick", "request", "body", "with", "plain", "words", "and", "paths/like/this"}
	for buf.Len() < n {
		if rng.Intn(4) == 0 {
			buf.WriteString(scanCorpusKeywords[rng.Intn(len(scanCorpusKeywords))])
		} else {
			buf.WriteString(words[rng.Intn(len(words))])
		}
		buf.WriteByte(" ,;=/"[rng.Intn(5)])
	}
	return buf.Bytes()
}

func eventsEqual(a, b Event) bool {
	return a.Kind == b.Kind && a.Rule == b.Rule && a.KeywordIndex == b.KeywordIndex &&
		a.Offset == b.Offset && a.SSLKey == b.SSLKey && a.HasSSLKey == b.HasSSLKey
}

// TestScanBatchMatchesProcessToken is the batch/sequential differential
// property of the issue: for 1k randomized (seeded) token streams,
// ScanBatch over ANY batch-size partition of the stream yields the same
// events, in the same stream-offset order, as per-token ProcessToken.
func TestScanBatchMatchesProcessToken(t *testing.T) {
	rs := mustParse(t,
		`alert tcp any any -> any any (content:"attack01"; sid:1;)`,
		`alert tcp any any -> any any (content:"exfil-marker-long"; sid:2;)`,
		`alert tcp any any -> any any (content:"shorty"; sid:3;)`,
		`alert tcp any any -> any any (content:"evil.dll"; content:"shorty"; sid:4;)`,
		`alert tcp any any -> any any (content:"x-hdr: 1"; offset:0; depth:400; sid:5;)`,
	)
	k := bbcrypto.DeriveBlock([]byte("scanbatch"), "k")
	kSSL := bbcrypto.DeriveBlock([]byte("scanbatch"), "kssl")

	iterations := 1000
	if testing.Short() {
		iterations = 100
	}
	sawEvents := 0
	for iter := 0; iter < iterations; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		proto := dpienc.Protocol(1 + iter%3)
		mode := tokenize.Mode(iter % 2)
		keys := keysFor(k, rs, mode)
		traffic := synthScanTraffic(rng, 100+rng.Intn(300))

		sender := dpienc.NewSender(k, kSSL, proto, uint64(iter))
		ets := sender.EncryptTokens(tokenize.TokenizeAll(mode, traffic))

		seqEng := NewEngine(rs, keys, Config{Mode: mode, Protocol: proto, Salt0: uint64(iter)})
		var want []Event
		for i := range ets {
			want = append(want, seqEng.ProcessToken(ets[i])...)
		}

		batchEng := NewEngine(rs, keys, Config{Mode: mode, Protocol: proto, Salt0: uint64(iter)})
		var got, scratch []Event
		for off := 0; off < len(ets); {
			n := 1 + rng.Intn(len(ets)-off)
			scratch = batchEng.ScanBatch(ets[off:off+n], scratch[:0])
			got = append(got, scratch...)
			off += n
		}

		if len(got) != len(want) {
			t.Fatalf("iter %d (proto %s, %s): %d batch events, want %d",
				iter, proto, mode, len(got), len(want))
		}
		for i := range want {
			if !eventsEqual(got[i], want[i]) {
				t.Fatalf("iter %d (proto %s, %s): event %d differs:\n got %+v\nwant %+v",
					iter, proto, mode, i, got[i], want[i])
			}
		}
		sawEvents += len(want)
		if seqEng.TokensSeen() != batchEng.TokensSeen() {
			t.Fatalf("iter %d: token counters diverged", iter)
		}
	}
	if sawEvents == 0 {
		t.Fatal("differential corpus produced no events — the property was vacuous")
	}
}

// TestScanBatchReusesDst pins the allocation contract: a dst with spare
// capacity is extended in place.
func TestScanBatchReusesDst(t *testing.T) {
	rs := mustParse(t, `alert tcp any any -> any any (content:"attack01"; sid:1;)`)
	k := bbcrypto.DeriveBlock([]byte("scanbatch-dst"), "k")
	keys := keysFor(k, rs, tokenize.Delimiter)
	sender := dpienc.NewSender(k, bbcrypto.Block{}, dpienc.ProtocolII, 0)
	ets := sender.EncryptTokens(tokenize.TokenizeAll(tokenize.Delimiter, []byte("hit attack01 now")))
	eng := NewEngine(rs, keys, Config{Mode: tokenize.Delimiter, Protocol: dpienc.ProtocolII})

	dst := make([]Event, 0, 16)
	out := eng.ScanBatch(ets, dst)
	if len(out) == 0 {
		t.Fatal("no events")
	}
	if &out[0] != &dst[:1][0] {
		t.Fatal("ScanBatch reallocated despite sufficient capacity")
	}
}

// TestScanBatchLargeStreamKeywordCount cross-checks aggregate semantics on
// a bigger stream: every occurrence of a repeated keyword is found exactly
// once by both paths.
func TestScanBatchLargeStreamKeywordCount(t *testing.T) {
	rs := mustParse(t, `alert tcp any any -> any any (content:"needlekw"; sid:9;)`)
	k := bbcrypto.DeriveBlock([]byte("scanbatch-count"), "k")
	keys := keysFor(k, rs, tokenize.Delimiter)

	var buf bytes.Buffer
	const occurrences = 257
	for i := 0; i < occurrences; i++ {
		fmt.Fprintf(&buf, "filler words %d then needlekw again ", i)
	}
	sender := dpienc.NewSender(k, bbcrypto.Block{}, dpienc.ProtocolII, 3)
	ets := sender.EncryptTokens(tokenize.TokenizeAll(tokenize.Delimiter, buf.Bytes()))

	eng := NewEngine(rs, keys, Config{Mode: tokenize.Delimiter, Protocol: dpienc.ProtocolII, Salt0: 3})
	events := eng.ScanBatch(ets, nil)
	var kw int
	for _, ev := range events {
		if ev.Kind == KeywordMatch {
			kw++
		}
	}
	if kw != occurrences {
		t.Fatalf("ScanBatch found %d keyword matches, want %d", kw, occurrences)
	}
}
