package detect_test

import (
	"testing"

	"repro/internal/bbcrypto"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/dpienc"
	"repro/internal/rules"
	"repro/internal/tokenize"
)

const fuzzRules = `alert tcp any any -> any any (msg:"kw"; content:"malwarepayload"; sid:1;)
alert tcp any any -> any any (msg:"pair"; content:"attackvector"; content:"exfiltrated"; sid:2;)
`

// FuzzIndexConsistency drives the tree and hash search structures with the
// same stream — genuine encrypted tokens or adversarial raw ciphertexts,
// followed by a counter reset — and demands identical detection behavior
// plus a balanced tree (every Update's delete matched by its insert).
func FuzzIndexConsistency(f *testing.F) {
	f.Add([]byte("malwarepayload"), uint64(0), false)
	f.Add([]byte("xx attackvector yy exfiltrated zz"), uint64(1234), false)
	f.Add([]byte("malwarepayload malwarepayload"), uint64(1)<<39, true)
	f.Add([]byte{0, 1, 2, 3, 4, 255, 254, 253, 252, 251}, ^uint64(0)-64, true)
	f.Fuzz(func(t *testing.T, data []byte, salt0 uint64, adversarial bool) {
		if len(data) > 4096 {
			return
		}
		rs, err := rules.Parse("fuzz", fuzzRules)
		if err != nil {
			t.Fatal(err)
		}
		var k bbcrypto.Block
		copy(k[:], "fuzz-detection-k")
		mode := tokenize.Window
		keys := core.DirectTokenKeys(k, rs, mode)
		newEngine := func(idx detect.Index) *detect.Engine {
			return detect.NewEngine(rs, keys, detect.Config{
				Mode: mode, Protocol: dpienc.ProtocolII, Salt0: salt0, Index: idx,
			})
		}
		treeIdx := detect.NewTreeIndex()
		engTree := newEngine(treeIdx)
		engHash := newEngine(detect.NewHashIndex())

		var stream []dpienc.EncryptedToken
		if adversarial {
			// Raw windows of the input as C1: the middlebox must handle
			// arbitrary attacker-chosen wire ciphertexts.
			for i := 0; i+dpienc.CiphertextSize <= len(data) && len(stream) < 512; i += dpienc.CiphertextSize {
				var c dpienc.Ciphertext
				copy(c[:], data[i:])
				stream = append(stream, dpienc.EncryptedToken{C1: c, Offset: i})
			}
		} else {
			s := dpienc.NewSender(k, bbcrypto.Block{}, dpienc.ProtocolII, salt0)
			stream = s.EncryptTokens(tokenize.TokenizeAll(mode, data))
		}
		for i, et := range stream {
			if !sameEvents(engTree.ProcessToken(et), engHash.ProcessToken(et)) {
				t.Fatalf("token %d: tree and hash engines diverged", i)
			}
			if treeIdx.Len() != engTree.NumFragments() {
				t.Fatalf("token %d: tree holds %d nodes, want %d", i, treeIdx.Len(), engTree.NumFragments())
			}
		}

		// A mid-connection reset rebuilds both indexes; the engines must
		// keep agreeing on a genuine stream afterwards.
		engTree.Reset(salt0 + 1)
		engHash.Reset(salt0 + 1)
		s := dpienc.NewSender(k, bbcrypto.Block{}, dpienc.ProtocolII, salt0+1)
		for i, et := range s.EncryptTokens(tokenize.TokenizeAll(mode, data)) {
			if !sameEvents(engTree.ProcessToken(et), engHash.ProcessToken(et)) {
				t.Fatalf("post-reset token %d: tree and hash engines diverged", i)
			}
		}
	})
}

func sameEvents(a, b []detect.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Rule.SID != b[i].Rule.SID ||
			a[i].KeywordIndex != b[i].KeywordIndex || a[i].Offset != b[i].Offset {
			return false
		}
	}
	return true
}
