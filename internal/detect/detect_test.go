package detect

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bbcrypto"
	"repro/internal/dpienc"
	"repro/internal/rules"
	"repro/internal/tokenize"
)

// keysFor derives the token keys a middlebox would obtain via obfuscated
// rule encryption — in tests we play both roles and compute them directly.
func keysFor(k bbcrypto.Block, rs *rules.Ruleset, mode tokenize.Mode) TokenKeys {
	keys := make(TokenKeys)
	for _, f := range rs.Fragments(mode) {
		var t [tokenize.TokenSize]byte
		copy(t[:], f[:])
		keys[rules.FragmentBlock(f)] = dpienc.ComputeTokenKey(k, t)
	}
	return keys
}

// runTraffic tokenizes, encrypts and detects over one payload, returning
// all events.
func runTraffic(t *testing.T, rs *rules.Ruleset, mode tokenize.Mode, proto dpienc.Protocol, payload []byte, idx Index) ([]Event, bbcrypto.Block) {
	t.Helper()
	k := bbcrypto.RandomBlock()
	kSSL := bbcrypto.RandomBlock()
	sender := dpienc.NewSender(k, kSSL, proto, 1000)
	eng := NewEngine(rs, keysFor(k, rs, mode), Config{
		Mode: mode, Protocol: proto, Salt0: sender.Salt0(), Index: idx,
	})
	var events []Event
	for _, tok := range tokenize.TokenizeAll(mode, payload) {
		events = append(events, eng.ProcessToken(sender.EncryptToken(tok))...)
	}
	return events, kSSL
}

func mustParse(t *testing.T, lines ...string) *rules.Ruleset {
	t.Helper()
	rs, err := rules.Parse("test", strings.Join(lines, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func ruleMatches(events []Event) []int {
	var sids []int
	for _, ev := range events {
		if ev.Kind == RuleMatch {
			sids = append(sids, ev.Rule.SID)
		}
	}
	return sids
}

func TestProtocolIBasicDetection(t *testing.T) {
	rs := mustParse(t, `alert tcp any any -> any any (msg:"wm"; content:"WATERMARK-CONF-77"; sid:1;)`)
	for _, mode := range []tokenize.Mode{tokenize.Window, tokenize.Delimiter} {
		payload := []byte("some document text WATERMARK-CONF-77 more text")
		events, _ := runTraffic(t, rs, mode, dpienc.ProtocolI, payload, nil)
		if got := ruleMatches(events); len(got) != 1 || got[0] != 1 {
			t.Fatalf("mode %v: rule matches = %v, want [1]", mode, got)
		}
	}
}

func TestNoFalsePositiveOnCleanTraffic(t *testing.T) {
	rs := mustParse(t, `alert tcp any any -> any any (content:"WATERMARK-CONF-77"; sid:1;)`)
	for _, mode := range []tokenize.Mode{tokenize.Window, tokenize.Delimiter} {
		payload := []byte("completely innocent content with nothing suspicious at all, honest")
		events, _ := runTraffic(t, rs, mode, dpienc.ProtocolI, payload, nil)
		if len(events) != 0 {
			t.Fatalf("mode %v: got %d events on clean traffic", mode, len(events))
		}
	}
}

func TestRepeatedKeywordDetectedEveryTime(t *testing.T) {
	// The counter-salt machinery must keep sender and MB in sync across
	// repeated occurrences of the same keyword.
	rs := mustParse(t, `alert tcp any any -> any any (content:"evilword"; sid:1;)`)
	payload := []byte(strings.Repeat("evilword filler ", 10))
	events, _ := runTraffic(t, rs, tokenize.Window, dpienc.ProtocolII, payload, nil)
	kwMatches := 0
	for _, ev := range events {
		if ev.Kind == KeywordMatch {
			kwMatches++
		}
	}
	if kwMatches != 10 {
		t.Fatalf("got %d keyword matches, want 10", kwMatches)
	}
}

func TestKeywordMatchReportsOffset(t *testing.T) {
	rs := mustParse(t, `alert tcp any any -> any any (content:"evilword"; sid:1;)`)
	payload := []byte("0123456789 evilword tail")
	events, _ := runTraffic(t, rs, tokenize.Window, dpienc.ProtocolI, payload, nil)
	if len(events) == 0 {
		t.Fatal("no events")
	}
	if events[0].Offset != 11 {
		t.Fatalf("match offset = %d, want 11", events[0].Offset)
	}
}

func TestLongKeywordRequiresAllFragments(t *testing.T) {
	// "maliciouslylong!" splits into two window fragments; traffic
	// containing only the first 8 bytes must not fire.
	rs := mustParse(t, `alert tcp any any -> any any (content:"maliciouslylong!"; sid:1;)`)
	partial := []byte("xx maliciou yy and unrelated data")
	events, _ := runTraffic(t, rs, tokenize.Window, dpienc.ProtocolI, partial, nil)
	if len(ruleMatches(events)) != 0 {
		t.Fatal("rule fired on a fragment-only occurrence")
	}
	full := []byte("xx maliciouslylong! yy")
	events, _ = runTraffic(t, rs, tokenize.Window, dpienc.ProtocolI, full, nil)
	if len(ruleMatches(events)) != 1 {
		t.Fatal("rule did not fire on the full keyword")
	}
}

func TestFragmentsAtInconsistentOffsetsDoNotMatch(t *testing.T) {
	// Both fragments of the keyword occur, but far apart: candidate starts
	// disagree, so no keyword match may fire.
	rs := mustParse(t, `alert tcp any any -> any any (content:"abcdefgh12345678"; sid:1;)`)
	payload := []byte("abcdefgh ............................ 12345678")
	events, _ := runTraffic(t, rs, tokenize.Window, dpienc.ProtocolI, payload, nil)
	if len(events) != 0 {
		t.Fatalf("got %d events for torn fragments", len(events))
	}
}

func TestProtocolIIMultiKeywordRule(t *testing.T) {
	rs := mustParse(t, `alert tcp any any -> any any (content:"keyword1"; content:"keyword2"; sid:5;)`)
	one := []byte("has keyword1 only")
	events, _ := runTraffic(t, rs, tokenize.Window, dpienc.ProtocolII, one, nil)
	if len(ruleMatches(events)) != 0 {
		t.Fatal("rule fired with one of two keywords")
	}
	both := []byte("has keyword1 and keyword2 here")
	events, _ = runTraffic(t, rs, tokenize.Window, dpienc.ProtocolII, both, nil)
	if len(ruleMatches(events)) != 1 {
		t.Fatal("rule did not fire with both keywords")
	}
}

func TestProtocolIIOffsetConstraints(t *testing.T) {
	// offset:4 depth:12 => keyword must start in [4, 4+12-len].
	rs := mustParse(t, `alert tcp any any -> any any (content:"needle88"; offset:4; depth:12; sid:6;)`)
	good := []byte("xxx needle88 and more")            // starts at 4
	bad := []byte("needle88 starts at offset zero oh") // starts at 0
	events, _ := runTraffic(t, rs, tokenize.Window, dpienc.ProtocolII, good, nil)
	if len(ruleMatches(events)) != 1 {
		t.Fatal("in-range offset did not fire")
	}
	events, _ = runTraffic(t, rs, tokenize.Window, dpienc.ProtocolII, bad, nil)
	if len(ruleMatches(events)) != 0 {
		t.Fatal("out-of-range offset fired")
	}
}

func TestProtocolIIDistanceWithin(t *testing.T) {
	rs := mustParse(t, `alert tcp any any -> any any (content:"firstkw1"; content:"secondk2"; distance:4; within:20; sid:7;)`)
	good := []byte("firstkw1 pad secondk2 x")            // gap 5, ends within 20
	tooClose := []byte("firstkw1 secondk2 padding here") // gap 1 < 4
	events, _ := runTraffic(t, rs, tokenize.Window, dpienc.ProtocolII, good, nil)
	if len(ruleMatches(events)) != 1 {
		t.Fatal("valid distance/within did not fire")
	}
	events, _ = runTraffic(t, rs, tokenize.Window, dpienc.ProtocolII, tooClose, nil)
	if len(ruleMatches(events)) != 0 {
		t.Fatal("distance violation fired")
	}
	tooFar := []byte("firstkw1 " + strings.Repeat("z", 40) + " secondk2")
	events, _ = runTraffic(t, rs, tokenize.Window, dpienc.ProtocolII, tooFar, nil)
	if len(ruleMatches(events)) != 0 {
		t.Fatal("within violation fired")
	}
}

func TestProtocolIIIRecoversSSLKeyOnMatch(t *testing.T) {
	rs := mustParse(t, `alert tcp any any -> any any (content:"attackkw"; sid:9;)`)
	payload := []byte("benign then attackkw appears")
	events, kSSL := runTraffic(t, rs, tokenize.Window, dpienc.ProtocolIII, payload, nil)
	if len(events) == 0 {
		t.Fatal("no events")
	}
	found := false
	for _, ev := range events {
		if ev.HasSSLKey {
			found = true
			if ev.SSLKey != kSSL {
				t.Fatalf("recovered %x, want %x", ev.SSLKey, kSSL)
			}
		}
	}
	if !found {
		t.Fatal("no event carried the SSL key")
	}
}

func TestProtocolIIINoKeyWithoutMatch(t *testing.T) {
	rs := mustParse(t, `alert tcp any any -> any any (content:"attackkw"; sid:9;)`)
	payload := []byte("entirely benign traffic, nothing to see")
	events, _ := runTraffic(t, rs, tokenize.Window, dpienc.ProtocolIII, payload, nil)
	if len(events) != 0 {
		t.Fatal("events fired without a keyword in traffic")
	}
}

func TestRuleMatchFiresOncePerFlow(t *testing.T) {
	rs := mustParse(t, `alert tcp any any -> any any (content:"evilword"; sid:1;)`)
	payload := []byte("evilword evilword evilword")
	events, _ := runTraffic(t, rs, tokenize.Window, dpienc.ProtocolI, payload, nil)
	if got := len(ruleMatches(events)); got != 1 {
		t.Fatalf("rule fired %d times, want 1", got)
	}
}

func TestEngineResetResynchronizes(t *testing.T) {
	rs := mustParse(t, `alert tcp any any -> any any (content:"evilword"; sid:1;)`)
	k := bbcrypto.RandomBlock()
	sender := dpienc.NewSender(k, bbcrypto.Block{}, dpienc.ProtocolI, 0)
	sender.SetResetInterval(16)
	eng := NewEngine(rs, keysFor(k, rs, tokenize.Window), Config{
		Mode: tokenize.Window, Protocol: dpienc.ProtocolI, Salt0: 0,
	})
	matches := 0
	feed := func(payload []byte) {
		for _, tok := range tokenize.TokenizeAll(tokenize.Window, payload) {
			for _, ev := range eng.ProcessToken(sender.EncryptToken(tok)) {
				if ev.Kind == KeywordMatch {
					matches++
				}
			}
		}
		if newSalt, reset := sender.AccountBytes(len(payload)); reset {
			eng.Reset(newSalt)
		}
	}
	feed([]byte("evilword first"))
	feed([]byte("evilword second")) // after a reset
	feed([]byte("evilword third"))  // after another reset
	if matches != 3 {
		t.Fatalf("got %d keyword matches across resets, want 3", matches)
	}
}

func TestTreeAndHashIndexAgree(t *testing.T) {
	rs := mustParse(t,
		`alert tcp any any -> any any (content:"evilword"; sid:1;)`,
		`alert tcp any any -> any any (content:"otherkw9"; content:"moremore"; sid:2;)`,
		`alert tcp any any -> any any (content:"maliciouslylong!"; sid:3;)`,
	)
	payload := []byte("evilword otherkw9 padding maliciouslylong! and moremore evilword")
	var results [][]int
	for _, idx := range []Index{NewTreeIndex(), NewHashIndex()} {
		events, _ := runTraffic(t, rs, tokenize.Window, dpienc.ProtocolII, payload, idx)
		results = append(results, ruleMatches(events))
	}
	if fmt.Sprint(results[0]) != fmt.Sprint(results[1]) {
		t.Fatalf("tree %v != hash %v", results[0], results[1])
	}
	if len(results[0]) != 3 {
		t.Fatalf("expected all 3 rules to fire, got %v", results[0])
	}
}

func TestEncryptedDetectionEqualsPlaintextSearch(t *testing.T) {
	// Key invariant: under window tokenization, BlindBox detection of
	// keywords >= TokenSize equals plaintext substring search.
	keywords := []string{"evilkw01", "badbadbadbad", "exploit8"}
	var lines []string
	for i, kw := range keywords {
		lines = append(lines, fmt.Sprintf(`alert tcp any any -> any any (content:"%s"; sid:%d;)`, kw, i+1))
	}
	rs := mustParse(t, lines...)
	payloads := []string{
		"nothing here",
		"evilkw01 at start",
		"ends with exploit8",
		"badbadbadbad mid evilkw01 end exploit8",
		"overlapping badbadbadbadbadbad stutter",
		"almost evilkw0 but not quite; exploit9 also no",
	}
	for _, p := range payloads {
		events, _ := runTraffic(t, rs, tokenize.Window, dpienc.ProtocolII, []byte(p), nil)
		fired := make(map[int]bool)
		for _, sid := range ruleMatches(events) {
			fired[sid] = true
		}
		for i, kw := range keywords {
			want := strings.Contains(p, kw)
			if fired[i+1] != want {
				t.Errorf("payload %q keyword %q: fired=%v want=%v", p, kw, fired[i+1], want)
			}
		}
	}
}

func TestMissingTokenKeysDegradeGracefully(t *testing.T) {
	// Withholding a fragment's token key must disable only that keyword.
	rs := mustParse(t,
		`alert tcp any any -> any any (content:"evilword"; sid:1;)`,
		`alert tcp any any -> any any (content:"otherkw9"; sid:2;)`,
	)
	k := bbcrypto.RandomBlock()
	keys := keysFor(k, rs, tokenize.Window)
	// Remove the key for "evilword".
	var evil [tokenize.TokenSize]byte
	copy(evil[:], "evilword")
	delete(keys, rules.FragmentBlock(evil))

	sender := dpienc.NewSender(k, bbcrypto.Block{}, dpienc.ProtocolII, 0)
	eng := NewEngine(rs, keys, Config{Mode: tokenize.Window, Protocol: dpienc.ProtocolII})
	var events []Event
	for _, tok := range tokenize.TokenizeAll(tokenize.Window, []byte("evilword and otherkw9")) {
		events = append(events, eng.ProcessToken(sender.EncryptToken(tok))...)
	}
	got := ruleMatches(events)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("rule matches = %v, want [2]", got)
	}
}

func TestStats(t *testing.T) {
	rs := mustParse(t, `alert tcp any any -> any any (content:"evilword"; sid:1;)`)
	events, _ := runTraffic(t, rs, tokenize.Window, dpienc.ProtocolI, []byte("evilword spotted"), nil)
	if len(events) == 0 {
		t.Fatal("no events")
	}
	// Re-run with a persistent engine to check Stats.
	k := bbcrypto.RandomBlock()
	sender := dpienc.NewSender(k, bbcrypto.Block{}, dpienc.ProtocolI, 0)
	eng := NewEngine(rs, keysFor(k, rs, tokenize.Window), Config{Mode: tokenize.Window, Protocol: dpienc.ProtocolI})
	for _, tok := range tokenize.TokenizeAll(tokenize.Window, []byte("evilword spotted")) {
		eng.ProcessToken(sender.EncryptToken(tok))
	}
	s := eng.Stats()
	if s.RulesFired != 1 || s.RulesTotal != 1 || s.Fragments != 1 || s.Tokens == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if !strings.Contains(eng.String(), "fired=1") {
		t.Fatalf("String() = %q", eng.String())
	}
}

func TestSharedFragmentAcrossRules(t *testing.T) {
	// Two rules sharing the keyword must both fire from one traffic
	// occurrence of it (plus the second rule's extra keyword).
	rs := mustParse(t,
		`alert tcp any any -> any any (content:"sharedkw"; sid:1;)`,
		`alert tcp any any -> any any (content:"sharedkw"; content:"extrakw2"; sid:2;)`,
	)
	payload := []byte("sharedkw and extrakw2 both present")
	events, _ := runTraffic(t, rs, tokenize.Window, dpienc.ProtocolII, payload, nil)
	got := ruleMatches(events)
	if len(got) != 2 {
		t.Fatalf("rule matches = %v, want both rules", got)
	}
}

func TestEncryptedEqualsPlaintextProperty(t *testing.T) {
	// Randomized version of the equivalence invariant: for random keyword
	// sets and payloads over a small alphabet, window-mode encrypted
	// detection fires exactly the rules whose keyword occurs as a
	// substring (keywords are >= TokenSize so window coverage is total).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := []byte("abcd  ..")
		randWord := func(n int) string {
			b := make([]byte, n)
			for i := range b {
				b[i] = alphabet[rng.Intn(len(alphabet))]
			}
			return string(b)
		}
		nRules := 1 + rng.Intn(4)
		var lines []string
		keywords := make([]string, nRules)
		for i := range keywords {
			keywords[i] = randWord(tokenize.TokenSize + rng.Intn(5))
			lines = append(lines, fmt.Sprintf(
				`alert tcp any any -> any any (content:"%s"; sid:%d;)`,
				escapeForRule(keywords[i]), i+1))
		}
		rs, err := rules.Parse("prop", strings.Join(lines, "\n"))
		if err != nil {
			return false
		}
		payload := []byte(randWord(20 + rng.Intn(150)))
		if rng.Intn(2) == 0 && nRules > 0 {
			// Plant one keyword to exercise the positive path too.
			at := rng.Intn(len(payload))
			payload = append(payload[:at], append([]byte(keywords[rng.Intn(nRules)]), payload[at:]...)...)
		}

		k := bbcrypto.RandomBlock()
		sender := dpienc.NewSender(k, bbcrypto.Block{}, dpienc.ProtocolII, 0)
		eng := NewEngine(rs, keysFor(k, rs, tokenize.Window), Config{
			Mode: tokenize.Window, Protocol: dpienc.ProtocolII,
		})
		fired := make(map[int]bool)
		for _, tok := range tokenize.TokenizeAll(tokenize.Window, payload) {
			for _, ev := range eng.ProcessToken(sender.EncryptToken(tok)) {
				if ev.Kind == RuleMatch {
					fired[ev.Rule.SID] = true
				}
			}
		}
		for i, kw := range keywords {
			want := strings.Contains(string(payload), kw)
			if fired[i+1] != want {
				t.Logf("seed %d keyword %q payload %q: fired=%v want=%v",
					seed, kw, payload, fired[i+1], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func escapeForRule(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, `;`, `\;`)
}

func TestEngineAccessors(t *testing.T) {
	rs := mustParse(t, `alert tcp any any -> any any (content:"evilword"; sid:1;)`)
	k := bbcrypto.RandomBlock()
	eng := NewEngine(rs, keysFor(k, rs, tokenize.Window), Config{Mode: tokenize.Window, Protocol: dpienc.ProtocolII})
	if eng.NumFragments() != 1 {
		t.Fatalf("NumFragments = %d", eng.NumFragments())
	}
	sender := dpienc.NewSender(k, bbcrypto.Block{}, dpienc.ProtocolII, 0)
	eng.ProcessToken(sender.EncryptToken(tokenize.Token{}))
	if eng.TokensSeen() != 1 {
		t.Fatalf("TokensSeen = %d", eng.TokensSeen())
	}
	if NewTreeIndex().Name() != "tree" || NewHashIndex().Name() != "hash" {
		t.Fatal("index names wrong")
	}
}

func TestTreeIndexLenAndCollisionHandling(t *testing.T) {
	ti := NewTreeIndex()
	e1 := &entry{cur: dpienc.CiphertextFromUint64(42)}
	e2 := &entry{cur: dpienc.CiphertextFromUint64(42)} // colliding key
	e3 := &entry{cur: dpienc.CiphertextFromUint64(7)}
	ti.Rebuild([]*entry{e1, e2, e3})
	if ti.Len() != 3 {
		t.Fatalf("Len = %d", ti.Len())
	}
	hits := ti.Lookup(dpienc.CiphertextFromUint64(42))
	if len(hits) != 2 {
		t.Fatalf("colliding lookup = %d entries", len(hits))
	}
	// Move e1 away; e2 must remain findable at the old key.
	ti.Update(e1, dpienc.CiphertextFromUint64(42), dpienc.CiphertextFromUint64(99))
	if got := ti.Lookup(dpienc.CiphertextFromUint64(42)); len(got) != 1 || got[0] != e2 {
		t.Fatalf("collision survivor lost: %v", got)
	}
	if got := ti.Lookup(dpienc.CiphertextFromUint64(99)); len(got) != 1 || got[0] != e1 {
		t.Fatal("moved entry not found")
	}
	if ti.Len() != 3 {
		t.Fatalf("Len after update = %d", ti.Len())
	}
}

func TestTreeIndexDeleteInternalNode(t *testing.T) {
	// Exercise BST deletion of a node with two children: build a known
	// shape and delete the root's successor chain.
	ti := NewTreeIndex()
	var entries []*entry
	for _, v := range []uint64{50, 30, 70, 20, 40, 60, 80, 65} {
		e := &entry{cur: dpienc.CiphertextFromUint64(v)}
		entries = append(entries, e)
	}
	ti.Rebuild(entries)
	// Delete the root (50): replaced by successor (60), which has a child.
	ti.Update(entries[0], dpienc.CiphertextFromUint64(50), dpienc.CiphertextFromUint64(55))
	for _, v := range []uint64{30, 70, 20, 40, 60, 80, 65, 55} {
		if len(ti.Lookup(dpienc.CiphertextFromUint64(v))) != 1 {
			t.Fatalf("key %d lost after internal deletion", v)
		}
	}
	if len(ti.Lookup(dpienc.CiphertextFromUint64(50))) != 0 {
		t.Fatal("deleted key still present")
	}
}

func TestCandidatePruningBoundsMemory(t *testing.T) {
	// A long flow full of *partial* fragment hits must not accumulate
	// unbounded keyword-start candidates: the prune horizon discards stale
	// ones. Build a two-fragment keyword and stream only its first
	// fragment, repeatedly, over a wide offset range.
	rs := mustParse(t, `alert tcp any any -> any any (content:"fragAAAAfragBBBB"; sid:1;)`)
	k := bbcrypto.RandomBlock()
	sender := dpienc.NewSender(k, bbcrypto.Block{}, dpienc.ProtocolII, 0)
	eng := NewEngine(rs, keysFor(k, rs, tokenize.Window), Config{
		Mode: tokenize.Window, Protocol: dpienc.ProtocolII,
	})
	var frag [tokenize.TokenSize]byte
	copy(frag[:], "fragAAAA")
	for off := 0; off < 1<<20; off += 64 {
		eng.ProcessToken(sender.EncryptToken(tokenize.Token{Text: frag, Offset: off}))
	}
	// All candidates older than the horizon must have been pruned.
	total := 0
	for _, cr := range eng.crules {
		for _, ks := range cr.keywords {
			total += len(ks.cands)
		}
	}
	// The prune runs every horizon bytes and keeps one horizon of history,
	// so at most ~2 horizons of candidates (at stride 64) may be live.
	if total > 2*(64<<10)/64+16 {
		t.Fatalf("candidate map grew unboundedly: %d entries", total)
	}
}
