package httpsim

import (
	"bytes"
	"strings"
	"testing"
)

func samplePage() *Page {
	return &Page{
		Name: "sample",
		Host: "sample.example",
		Resources: []Resource{
			{
				Path:        "/index.html",
				ContentType: "text/html",
				Segments:    []Segment{{Data: []byte(strings.Repeat("<p>hello world</p>", 100))}},
			},
			{
				Path:        "/logo.png",
				ContentType: "image/png",
				Segments:    []Segment{{Binary: true, Data: bytes.Repeat([]byte{0xAB, 0x13}, 2048)}},
			},
			{
				Path:        "/mixed",
				ContentType: "multipart/mixed",
				Segments: []Segment{
					{Data: []byte("--boundary\r\ncontent-type: text/plain\r\n\r\npart")},
					{Binary: true, Data: bytes.Repeat([]byte{9}, 512)},
				},
			},
		},
	}
}

func TestPageByteAccounting(t *testing.T) {
	p := samplePage()
	total := p.TotalBytes()
	text := p.TextBytes()
	bin := p.BinaryBytes()
	if total != text+bin {
		t.Fatalf("total %d != text %d + bin %d", total, text, bin)
	}
	if bin != 4096+512 {
		t.Fatalf("binary bytes = %d", bin)
	}
	if text <= 0 {
		t.Fatal("no text bytes")
	}
}

func TestRequestAndResponseHeaderShape(t *testing.T) {
	r := &samplePage().Resources[0]
	req := string(r.Request("sample.example"))
	if !strings.HasPrefix(req, "GET /index.html HTTP/1.1\r\n") || !strings.HasSuffix(req, "\r\n\r\n") {
		t.Fatalf("request = %q", req)
	}
	hdr := string(r.ResponseHeader())
	if !strings.Contains(hdr, "Content-Type: text/html") || !strings.Contains(hdr, "Content-Length: 1800") {
		t.Fatalf("header = %q", hdr)
	}
}

func TestTextCodeOnlyStripsBinary(t *testing.T) {
	p := samplePage()
	tc := p.TextCodeOnly()
	if tc.BinaryBytes() != 0 {
		t.Fatalf("text-only page has %d binary bytes", tc.BinaryBytes())
	}
	// The pure-binary resource disappears; the mixed one keeps its text.
	if len(tc.Resources) != 2 {
		t.Fatalf("resources = %d", len(tc.Resources))
	}
}

func TestGzipTextBytesSmallerForRedundantText(t *testing.T) {
	p := samplePage()
	gz := p.GzipTextBytes()
	if gz >= p.TotalBytes() {
		t.Fatalf("gzip size %d not smaller than raw %d for repetitive text", gz, p.TotalBytes())
	}
	// Binary bytes are incompressible pass-through in the accounting.
	if gz < p.BinaryBytes() {
		t.Fatalf("gzip size %d below binary floor %d", gz, p.BinaryBytes())
	}
}

func TestFlowPreservesOrderAndKinds(t *testing.T) {
	p := samplePage()
	flow := p.Flow()
	// First chunk is the header of resource 0 (text).
	if flow[0].Binary || !bytes.HasPrefix(flow[0].Data, []byte("HTTP/1.1 200 OK")) {
		t.Fatalf("first flow chunk wrong: %q", flow[0].Data[:20])
	}
	var total int
	for _, s := range flow {
		total += len(s.Data)
	}
	if total != p.TotalBytes() {
		t.Fatalf("flow bytes %d != page total %d", total, p.TotalBytes())
	}
}

func TestStats(t *testing.T) {
	st := samplePage().Stats()
	if st.Name != "sample" || st.Resources != 3 || st.TotalBytes != st.TextBytes+st.BinBytes {
		t.Fatalf("stats = %+v", st)
	}
}
