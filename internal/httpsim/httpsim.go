// Package httpsim models the HTTP workloads of the paper's evaluation: web
// pages made of text/code resources (tokenized by BlindBox) and binary
// resources such as images and video (not tokenized, §3), plus gzip
// accounting for the Fig. 6 compressed-baseline comparison.
package httpsim

import (
	"bytes"
	"compress/gzip"
	"fmt"
)

// Segment is a run of payload bytes of one kind.
type Segment struct {
	// Binary marks content the IDS does not inspect (images, video,
	// fonts); text/code segments are tokenized.
	Binary bool
	// Data is the payload.
	Data []byte
}

// Resource is one HTTP resource of a page.
type Resource struct {
	// Path is the request path.
	Path string
	// ContentType is the response media type.
	ContentType string
	// Segments is the response body, in order. HTML documents are a
	// single text segment; a JPEG is a single binary segment; some
	// resources mix (e.g. multipart).
	Segments []Segment
}

// BodyBytes returns total body size.
func (r *Resource) BodyBytes() int {
	n := 0
	for _, s := range r.Segments {
		n += len(s.Data)
	}
	return n
}

// TextBytes returns the number of tokenizable bytes.
func (r *Resource) TextBytes() int {
	n := 0
	for _, s := range r.Segments {
		if !s.Binary {
			n += len(s.Data)
		}
	}
	return n
}

// Request renders the HTTP/1.1 GET request for the resource.
func (r *Resource) Request(host string) []byte {
	return []byte(fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\nAccept: */*\r\nConnection: keep-alive\r\n\r\n", r.Path, host))
}

// ResponseHeader renders the response status line and headers (always
// text, hence tokenized).
func (r *Resource) ResponseHeader() []byte {
	return []byte(fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: keep-alive\r\n\r\n",
		r.ContentType, r.BodyBytes()))
}

// Page is a web page: a primary document plus subresources, fetched over
// one persistent connection (the paper's post-handshake page-load setting).
type Page struct {
	// Name labels the page (site name or rank).
	Name string
	// Host is the logical server.
	Host string
	// Resources are fetched in order.
	Resources []Resource
}

// TotalBytes is the page's response payload size (headers + bodies).
func (p *Page) TotalBytes() int {
	n := 0
	for i := range p.Resources {
		n += len(p.Resources[i].ResponseHeader()) + p.Resources[i].BodyBytes()
	}
	return n
}

// TextBytes is the tokenizable portion (headers plus text bodies).
func (p *Page) TextBytes() int {
	n := 0
	for i := range p.Resources {
		n += len(p.Resources[i].ResponseHeader()) + p.Resources[i].TextBytes()
	}
	return n
}

// BinaryBytes is the untokenized portion.
func (p *Page) BinaryBytes() int { return p.TotalBytes() - p.TextBytes() }

// TextCodeOnly returns a copy of the page with binary resources removed —
// the paper's "Text/Code" page-load variant (Figs. 3 and 4 report both).
func (p *Page) TextCodeOnly() *Page {
	out := &Page{Name: p.Name + "-text", Host: p.Host}
	for _, r := range p.Resources {
		text := Resource{Path: r.Path, ContentType: r.ContentType}
		for _, s := range r.Segments {
			if !s.Binary {
				text.Segments = append(text.Segments, s)
			}
		}
		if len(text.Segments) > 0 {
			out.Resources = append(out.Resources, text)
		}
	}
	return out
}

// GzipTextBytes returns the gzip-compressed size of the page's text
// content — the "transmitted bytes with gzip" baseline of Fig. 6.
func (p *Page) GzipTextBytes() int {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	for i := range p.Resources {
		// gzip into a bytes.Buffer cannot fail.
		_, _ = zw.Write(p.Resources[i].ResponseHeader())
		for _, s := range p.Resources[i].Segments {
			if !s.Binary {
				_, _ = zw.Write(s.Data)
			}
		}
	}
	_ = zw.Close()
	return buf.Len() + p.BinaryBytes()
}

// Flow flattens the page into the byte stream a server would send over one
// persistent connection, as (kind, data) chunks in order.
func (p *Page) Flow() []Segment {
	var out []Segment
	for i := range p.Resources {
		out = append(out, Segment{Data: p.Resources[i].ResponseHeader()})
		out = append(out, p.Resources[i].Segments...)
	}
	return out
}

// Stats summarizes a page for reporting.
type Stats struct {
	Name       string
	Resources  int
	TotalBytes int
	TextBytes  int
	BinBytes   int
}

// Stats returns the page's summary.
func (p *Page) Stats() Stats {
	return Stats{
		Name:       p.Name,
		Resources:  len(p.Resources),
		TotalBytes: p.TotalBytes(),
		TextBytes:  p.TextBytes(),
		BinBytes:   p.BinaryBytes(),
	}
}
