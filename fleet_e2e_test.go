// Fleet e2e: three live middlebox workers, each with its own registry,
// flight recorder and admin surface, aggregated by the internal/obs/agg
// scraper that backs bbfleet. The claims under test are the fleet
// plane's contracts (DESIGN.md §8):
//
//   - rollup exactness: every worker="fleet" series on /cluster/metrics
//     equals the sum of the per-worker series, and both match
//     Middlebox.Stats() to the digit;
//   - cross-worker tracing: /cluster/trace assembles the live
//     flight-recorder spans of all three workers into one acyclic tree;
//   - SLO flip: a chaos-injected fail-open degradation on one worker
//     turns the fleet Check from OK to failing (the bbfleet -check exit
//     code) and marks that worker degraded.
package blindbox

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/middlebox"
	"repro/internal/obs"
	"repro/internal/obs/agg"
	"repro/internal/retry"
)

// fleetWorker is one live worker: a middlebox proxying to its own echo
// server, with the same admin mux bbmb -admin -worker serves.
type fleetWorker struct {
	name   string
	reg    *Metrics
	rec    *Recorder
	mb     *Middlebox
	mbAddr string
	admin  *httptest.Server
}

// newFleetWorker boots one worker. The policy/barrier/onAlert knobs let
// one worker double as the chaos target (fail-open with a stallable
// alert sink); the others run defaults.
func newFleetWorker(t *testing.T, name string, g *RuleGenerator, rs *Ruleset,
	policy middlebox.Policy, barrier time.Duration, onAlert func(Alert)) *fleetWorker {
	t.Helper()
	w := &fleetWorker{name: name, reg: NewMetrics()}
	obs.RegisterWorkerInfo(w.reg, name)
	w.rec = NewRecorder(RecorderConfig{Metrics: w.reg})
	tmo := chaosMBTimeouts()
	if barrier != 0 {
		tmo.Barrier = barrier
	}
	mb, err := NewMiddlebox(MiddleboxConfig{
		Ruleset:      g.Sign(rs),
		RGPublicKey:  g.PublicKey(),
		Policy:       policy,
		Timeouts:     tmo,
		DetectShards: 1,
		ShardQueue:   8,
		Metrics:      w.reg,
		Recorder:     w.rec,
		OnAlert:      onAlert,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.mb = mb

	serverLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	epCfg := ConnConfig{
		Core:     DefaultConfig(),
		RG:       RGMaterial{TagKey: g.TagKey()},
		Timeouts: chaosEndpointTimeouts(),
	}
	go func() {
		for {
			raw, err := serverLn.Accept()
			if err != nil {
				return
			}
			go func() {
				conn, err := Server(raw, epCfg)
				if err != nil {
					raw.Close()
					return
				}
				defer conn.Close()
				data, err := io.ReadAll(conn)
				if err != nil {
					return
				}
				conn.Write(data)
				conn.CloseWrite()
			}()
		}
	}()
	go mb.Serve(mbLn, serverLn.Addr().String())

	mux := AdminMux(w.reg)
	w.rec.Mount(mux)
	w.admin = httptest.NewServer(mux)
	w.mbAddr = mbLn.Addr().String()
	t.Cleanup(func() {
		w.admin.Close()
		mbLn.Close()
		serverLn.Close()
	})
	return w
}

// runFleetSession drives one echo session through the worker and fails
// the test unless the full payload came back.
func runFleetSession(t *testing.T, g *RuleGenerator, w *fleetWorker, payload []byte) {
	t.Helper()
	ccfg := ConnConfig{
		Core:     Config{Protocol: ProtocolI, Mode: DelimiterTokens},
		RG:       RGMaterial{TagKey: g.TagKey()},
		Timeouts: chaosEndpointTimeouts(),
	}
	raw, err := net.Dial("tcp", w.mbAddr)
	if err != nil {
		t.Fatal(err)
	}
	res := runChaosSession(t, ccfg, raw, payload, 15*time.Second)
	if res.err != nil {
		t.Fatalf("worker %s session: %v", w.name, res.err)
	}
	if !bytes.Equal(res.echoed, payload) {
		t.Fatalf("worker %s echoed %d bytes, want %d", w.name, len(res.echoed), len(payload))
	}
}

// waitStableStats polls until two successive Stats() reads agree —
// session bookkeeping on a live worker settles asynchronously after the
// client sees its echo.
func waitStableStats(t *testing.T, mb *Middlebox) middlebox.Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	prev := mb.Stats()
	for {
		time.Sleep(30 * time.Millisecond)
		cur := mb.Stats()
		if cur == prev {
			return cur
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker stats did not settle: %+v vs %+v", prev, cur)
		}
		prev = cur
	}
}

// TestFleetObservabilityPlane is the three-worker fleet e2e described in
// the file comment.
func TestFleetObservabilityPlane(t *testing.T) {
	g, err := NewRuleGenerator("FleetRG")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ParseRules("fleet",
		`alert tcp any any -> any any (msg:"kw"; content:"attack01"; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}

	// w1 and w2 run defaults; w3 is the chaos target: fail-open, a 200ms
	// detection barrier, and an alert sink that stalls its only shard
	// until the gate opens — benign traffic never alerts, so w3 behaves
	// normally until the chaos phase plants the keyword.
	gate := make(chan struct{})
	w1 := newFleetWorker(t, "w1", g, rs, middlebox.FailClosed, 0, nil)
	w2 := newFleetWorker(t, "w2", g, rs, middlebox.FailClosed, 0, nil)
	w3 := newFleetWorker(t, "w3", g, rs, middlebox.FailOpen, 200*time.Millisecond,
		func(Alert) { <-gate })
	workers := []*fleetWorker{w1, w2, w3}

	attack := conformancePayload(42, 8<<10)
	benign := []byte(strings.Repeat("calm traffic flowing quietly through the fleet ", 64))
	runFleetSession(t, g, w1, attack)
	runFleetSession(t, g, w1, attack)
	runFleetSession(t, g, w2, attack)
	runFleetSession(t, g, w3, benign)

	// Freeze w1/w2 (drain); w3 stays live for the chaos phase, so wait
	// until its counters settle instead.
	if err := w1.mb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.mb.Close(); err != nil {
		t.Fatal(err)
	}
	stats := []middlebox.Stats{w1.mb.Stats(), w2.mb.Stats(), waitStableStats(t, w3.mb)}

	s, err := agg.New(agg.Config{
		Targets: []agg.Target{
			{Name: "w1", URL: w1.admin.URL},
			{Name: "w2", URL: w2.admin.URL},
			{Name: "w3", URL: w3.admin.URL},
		},
		Retry:   retry.Policy{Attempts: 1, Base: time.Millisecond, Max: time.Millisecond},
		Metrics: obs.NewRegistry(),
		SLOs:    agg.DefaultSLOs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ScrapeOnce(nil); err != nil {
		t.Fatalf("healthy scrape round failed: %v", err)
	}

	// Healthy verdict: every worker up, every SLO met.
	rep := s.Check()
	if !rep.OK {
		blob, _ := json.Marshal(rep)
		t.Fatalf("healthy fleet fails Check: %s", blob)
	}
	if len(rep.Workers) != 3 {
		t.Fatalf("Check reports %d workers, want 3", len(rep.Workers))
	}
	for _, wh := range rep.Workers {
		if wh.State != agg.StateUp {
			t.Errorf("worker %s state %s, want up", wh.Name, wh.State)
		}
	}

	// Rollup exactness: /cluster/metrics totals == sum of per-worker
	// Stats(), per worker and for the worker="fleet" rollup, to the digit.
	var buf bytes.Buffer
	if err := s.WriteClusterMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	expo, err := agg.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparsing /cluster/metrics: %v", err)
	}
	totals := map[string]func(middlebox.Stats) uint64{
		"blindbox_mb_connections_total":     func(st middlebox.Stats) uint64 { return st.Connections },
		"blindbox_mb_tokens_scanned_total":  func(st middlebox.Stats) uint64 { return st.TokensScanned },
		"blindbox_mb_bytes_forwarded_total": func(st middlebox.Stats) uint64 { return st.BytesForwarded },
		"blindbox_mb_alerts_total":          func(st middlebox.Stats) uint64 { return st.Alerts },
		"blindbox_mb_unscanned_bytes_total": func(st middlebox.Stats) uint64 { return st.UnscannedBytes },
	}
	for name, field := range totals {
		fam := expo.Family(name)
		if fam == nil {
			t.Errorf("merged exposition lacks %s", name)
			continue
		}
		var sum uint64
		for i, w := range workers {
			want := field(stats[i])
			sum += want
			got, ok := fam.With(map[string]string{"worker": w.name})
			if !ok || got != float64(want) {
				t.Errorf("%s{worker=%q} = %v (present %v), Stats() says %d", name, w.name, got, ok, want)
			}
		}
		got, ok := fam.With(map[string]string{"worker": agg.FleetLabel})
		if !ok || got != float64(sum) {
			t.Errorf("%s{worker=\"fleet\"} = %v (present %v), want %d", name, got, ok, sum)
		}
	}
	if stats[0].TokensScanned == 0 || stats[0].Alerts == 0 {
		t.Fatalf("w1 scanned nothing or never alerted — the fleet run was vacuous: %+v", stats[0])
	}
	// Worker identity: the scrape-assigned name and the worker's
	// self-reported blindbox_worker_info must agree side by side.
	info := expo.Family(obs.WorkerInfo)
	if info == nil {
		t.Fatal("merged exposition lacks blindbox_worker_info")
	}
	for _, w := range workers {
		got, ok := info.With(map[string]string{"worker": w.name, "exported_worker": w.name})
		if !ok || got != 1 {
			t.Errorf("worker_info{worker=%q,exported_worker=%q} = %v (present %v), want 1", w.name, w.name, got, ok)
		}
	}

	// The same surfaces over HTTP, the way bbfleet -admin serves them.
	fleetSrv := httptest.NewServer(s.Mux())
	defer fleetSrv.Close()
	resp, err := http.Get(fleetSrv.URL + "/cluster/workers")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/cluster/workers Content-Type %q", ct)
	}
	var httpRep agg.CheckReport
	err = json.NewDecoder(resp.Body).Decode(&httpRep)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(httpRep.Workers) != 3 || !httpRep.OK {
		t.Fatalf("/cluster/workers: OK=%v with %d workers, want healthy 3", httpRep.OK, len(httpRep.Workers))
	}

	// Cross-worker trace: one logical flow leaves live spans in all three
	// recorders under a shared trace context; /cluster/trace must pull and
	// assemble them into a single acyclic tree spanning every worker.
	ctx := obs.NewSpanCtx()
	base := time.Now().Add(-2 * time.Second).UnixNano()
	mkSpan := func(name, dir string, startOff, dur int64) obs.Span {
		return obs.Span{
			Flow: 9001, Party: obs.PartyMB, Name: name, Dir: dir,
			Start: base + startOff, Dur: dur,
		}
	}
	root := mkSpan(obs.SpanConn, "", 0, int64(time.Second))
	ctx.Stamp(&root)
	scan := mkSpan(obs.SpanScan, "c2s", int64(100*time.Millisecond), int64(200*time.Millisecond))
	ctx.Child().Stamp(&scan)
	forward := mkSpan(obs.SpanForward, "c2s", int64(400*time.Millisecond), int64(300*time.Millisecond))
	ctx.Child().Stamp(&forward)
	for i, sp := range []obs.Span{root, scan, forward} {
		fr := workers[i].rec.BeginFlowSampled(9001, obs.PartyMB, ctx, false)
		fr.Emit(sp)
		defer fr.End("")
	}
	tresp, err := http.Get(fleetSrv.URL + "/cluster/trace?id=" + ctx.TraceString())
	if err != nil {
		t.Fatal(err)
	}
	tbody, err := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/cluster/trace: status %d, body %s", tresp.StatusCode, tbody)
	}
	var tr agg.TraceResponse
	if err := json.Unmarshal(tbody, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Spans != 3 || tr.Partial || tr.Orphans != 0 {
		t.Fatalf("trace: %d spans, partial=%v, %d orphans, want 3 complete", tr.Spans, tr.Partial, tr.Orphans)
	}
	if want := []string{"w1", "w2", "w3"}; fmt.Sprint(tr.Workers) != fmt.Sprint(want) {
		t.Fatalf("trace workers %v, want %v", tr.Workers, want)
	}
	if len(tr.Tree) != 3 {
		t.Fatalf("trace tree has %d nodes, want 3", len(tr.Tree))
	}
	// A preorder flattening is acyclic iff it starts at depth 0 and each
	// node descends at most one level below its predecessor.
	for i, node := range tr.Tree {
		switch {
		case i == 0 && node.Depth != 0:
			t.Fatalf("trace tree starts at depth %d, want 0", node.Depth)
		case i > 0 && (node.Depth < 1 || node.Depth > tr.Tree[i-1].Depth+1):
			t.Fatalf("trace tree node %d at depth %d after depth %d — not a preorder tree",
				i, node.Depth, tr.Tree[i-1].Depth)
		}
	}

	// Chaos phase: plant the keyword on w3. Its stalled alert sink wedges
	// the only detect shard, the 200ms barrier expires, and the fail-open
	// policy forwards the flow unscanned — a real degradation, not a
	// synthetic counter bump.
	runFleetSession(t, g, w3, attack)
	close(gate)
	st3 := waitStableStats(t, w3.mb)
	if st3.Degraded == 0 || st3.UnscannedBytes == 0 {
		t.Fatalf("chaos session did not degrade w3: %+v", st3)
	}

	if err := s.ScrapeOnce(nil); err != nil {
		t.Fatalf("post-chaos scrape round failed: %v", err)
	}
	rep = s.Check()
	if rep.OK {
		t.Fatal("Check stayed OK after a fail-open degradation breached the unscanned-bytes SLO")
	}
	var unscanned *agg.SLOResult
	for i := range rep.SLOs {
		if rep.SLOs[i].Name == "unscanned_bytes" {
			unscanned = &rep.SLOs[i]
		}
	}
	if unscanned == nil || unscanned.OK {
		t.Fatalf("unscanned_bytes SLO did not flip: %+v", rep.SLOs)
	}
	for _, wh := range rep.Workers {
		if wh.Name == "w3" && wh.State != agg.StateDegraded {
			t.Errorf("w3 state %s after degradation, want degraded", wh.State)
		}
	}

	if err := w3.mb.Close(); err != nil {
		t.Fatal(err)
	}
}
