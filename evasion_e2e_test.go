// Adversarial end-to-end suite: every evasion transform's cases flow as
// real client -> middlebox -> server sessions over loopback on Protocols
// I-III, with the case's write boundaries preserved as separate
// conn.Write calls. Cases ride in one session per expected outcome:
//
//   - the must-detect session must raise a rule alert for every targeted
//     SID;
//   - the documented-miss session must stay alert-free AND every miss
//     class it exercises must be enumerated in DESIGN.md §10 (an
//     undocumented miss fails the suite);
//   - the must-not-false-alert session must stay alert-free.
//
// Packet-level transforms (reassembly ambiguities) contribute their
// middlebox-reassembled views, so all twelve named transforms cross the
// wire.
package blindbox

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/evasion"
	"repro/internal/tokenize"
)

// evasionE2ECase maps one protocol to its tokenization mode and ruleset.
// Protocol I supports single-keyword rules only, so the multi-keyword rule
// (sid 105) and the cases targeting it are filtered out there.
type evasionE2ECase struct {
	name      string
	cfg       Config
	mode      tokenize.Mode
	dropSIDs  map[int]bool
	secondary bool
}

func evasionE2ECases() []evasionE2ECase {
	return []evasionE2ECase{
		{name: "protocolI-delimiter", cfg: Config{Protocol: ProtocolI, Mode: DelimiterTokens},
			mode: tokenize.Delimiter, dropSIDs: map[int]bool{evasion.SIDMulti: true}},
		{name: "protocolII-delimiter", cfg: Config{Protocol: ProtocolII, Mode: DelimiterTokens},
			mode: tokenize.Delimiter},
		{name: "protocolIII-window", cfg: Config{Protocol: ProtocolIII, Mode: WindowTokens},
			mode: tokenize.Window, secondary: true},
	}
}

// evasionRuleText returns the evasion pack ruleset minus the dropped SIDs.
func evasionRuleText(drop map[int]bool) string {
	var keep []string
	for _, line := range strings.Split(evasion.RuleText, "\n") {
		dropped := false
		for sid := range drop {
			if strings.Contains(line, fmt.Sprintf("sid:%d;", sid)) {
				dropped = true
			}
		}
		if !dropped {
			keep = append(keep, line)
		}
	}
	return strings.Join(keep, "\n")
}

// outcomeGroup is one session's write plan: the concatenation of every
// case with a given expected outcome, each case's write boundaries kept,
// cases separated by a delimiter write so no cross-case token forms.
type outcomeGroup struct {
	outcome evasion.Outcome
	writes  [][]byte
	// wantSIDs lists, for must-detect, each case's targeted SID (with
	// repetition per case; all must alert).
	wantSIDs []int
	// missClasses lists, for documented-miss, each case's declared class.
	missClasses []string
}

// addCase appends one case's chunked writes to the group.
func (g *outcomeGroup) addCase(payload []byte, chunks []int) {
	prev := 0
	for _, cut := range chunks {
		g.writes = append(g.writes, payload[prev:cut])
		prev = cut
	}
	g.writes = append(g.writes, payload[prev:], []byte(" "))
}

// buildGroups assembles the per-outcome write plans for a protocol: all
// stream cases for the mode plus the packet transforms' reassembled
// middlebox views (with their expectations adjusted to that view: the
// out-of-order view has lost the keyword, so its session must stay
// alert-free, which is exactly the documented-miss contract).
func buildGroups(t *testing.T, tc evasionE2ECase) map[evasion.Outcome]*outcomeGroup {
	t.Helper()
	groups := map[evasion.Outcome]*outcomeGroup{
		evasion.MustDetect:        {outcome: evasion.MustDetect},
		evasion.DocumentedMiss:    {outcome: evasion.DocumentedMiss},
		evasion.MustNotFalseAlert: {outcome: evasion.MustNotFalseAlert},
	}
	for _, c := range evasion.StreamCases(tc.mode) {
		if tc.dropSIDs[c.SID] {
			continue
		}
		g := groups[c.Expect]
		g.addCase(c.Payload, c.Chunks)
		switch c.Expect {
		case evasion.MustDetect:
			g.wantSIDs = append(g.wantSIDs, c.SID)
		case evasion.DocumentedMiss:
			g.missClasses = append(g.missClasses, c.MissClass)
		}
	}
	for _, pc := range evasion.PacketCases(4242) {
		view, err := evasion.ReplayThroughCapture(pc.Segments)
		if err != nil {
			t.Fatalf("%s: %v", pc.Label, err)
		}
		g := groups[pc.Expect]
		g.addCase(view, nil)
		switch pc.Expect {
		case evasion.MustDetect:
			g.wantSIDs = append(g.wantSIDs, pc.SID)
		case evasion.DocumentedMiss:
			g.missClasses = append(g.missClasses, pc.MissClass)
		}
	}
	return groups
}

// sessionAlerts summarizes one session's alerts.
type sessionAlerts struct {
	ruleSIDs      map[int]bool
	secondarySIDs map[int]bool
	keywordHits   int
	recovered     bool
}

// runEvasionSessions drives one session per outcome group through a live
// middlebox and returns each group's alert summary.
func runEvasionSessions(t *testing.T, tc evasionE2ECase, groups []*outcomeGroup) []sessionAlerts {
	t.Helper()
	g, err := NewRuleGenerator("EvasionRG")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ParseRules("evasion-e2e", evasionRuleText(tc.dropSIDs))
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu     sync.Mutex
		alerts []Alert
	)
	mb, err := NewMiddlebox(MiddleboxConfig{
		Ruleset:     g.Sign(rs),
		RGPublicKey: g.PublicKey(),
		Secondary:   tc.secondary,
		OnAlert: func(a Alert) {
			mu.Lock()
			alerts = append(alerts, a)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	serverLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer serverLn.Close()
	mbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mbLn.Close()
	epCfg := ConnConfig{Core: DefaultConfig(), RG: RGMaterial{TagKey: g.TagKey()}}
	go func() {
		for {
			raw, err := serverLn.Accept()
			if err != nil {
				return
			}
			go func() {
				conn, err := Server(raw, epCfg)
				if err != nil {
					raw.Close()
					return
				}
				if _, err := io.Copy(io.Discard, conn); err == nil {
					conn.Write([]byte("ok"))
					conn.CloseWrite()
				}
				conn.Close()
			}()
		}
	}()
	go mb.Serve(mbLn, serverLn.Addr().String())

	for gi, grp := range groups {
		conn, err := Dial(mbLn.Addr().String(), ConnConfig{Core: tc.cfg, RG: RGMaterial{TagKey: g.TagKey()}})
		if err != nil {
			t.Fatalf("group %d dial: %v", gi, err)
		}
		var total int
		for _, w := range grp.writes {
			if len(w) == 0 {
				continue
			}
			if _, err := conn.Write(w); err != nil {
				t.Fatalf("group %d write: %v", gi, err)
			}
			total += len(w)
		}
		if err := conn.CloseWrite(); err != nil {
			t.Fatalf("group %d: %v", gi, err)
		}
		if _, err := io.Copy(io.Discard, conn); err != nil {
			t.Fatalf("group %d read: %v", gi, err)
		}
		conn.Close()
		if total == 0 {
			t.Fatalf("group %d sent no bytes", gi)
		}
	}
	if err := mb.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	// The must-detect group always runs as session 0 and must be the ONLY
	// connection that produces any event at all: the miss and benign
	// sessions complete no keyword, so even a KeywordMatch from a second
	// connection is an evasion-suite failure. That makes the mapping
	// unambiguous without relying on ConnID assignment details.
	byConn := map[uint64]*sessionAlerts{}
	for _, a := range alerts {
		sa := byConn[a.ConnID]
		if sa == nil {
			sa = &sessionAlerts{ruleSIDs: map[int]bool{}, secondarySIDs: map[int]bool{}}
			byConn[a.ConnID] = sa
		}
		if a.Secondary {
			for _, sid := range a.SecondarySIDs {
				sa.secondarySIDs[sid] = true
			}
			sa.recovered = true
			continue
		}
		if a.Event.HasSSLKey {
			sa.recovered = true
		}
		switch a.Event.Kind {
		case RuleMatch:
			if a.Event.Rule != nil {
				sa.ruleSIDs[a.Event.Rule.SID] = true
			}
		case KeywordMatch:
			sa.keywordHits++
		}
	}
	out := make([]sessionAlerts, len(groups))
	for i := range out {
		out[i] = sessionAlerts{ruleSIDs: map[int]bool{}, secondarySIDs: map[int]bool{}}
	}
	if len(byConn) > 1 {
		for id, sa := range byConn {
			t.Errorf("connection %d alerted: rules %v, %d keyword hits, secondary %v",
				id, keys(sa.ruleSIDs), sa.keywordHits, keys(sa.secondarySIDs))
		}
		t.Fatalf("%d connections alerted; only the must-detect session may", len(byConn))
	}
	for _, sa := range byConn {
		out[0] = *sa
	}
	return out
}

// TestEvasionE2E drives the adversary suite over live loopback sessions on
// all three protocols.
func TestEvasionE2E(t *testing.T) {
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatalf("reading DESIGN.md: %v", err)
	}
	if !bytes.Contains(design, []byte("Adversarial model")) {
		t.Fatal("DESIGN.md lacks the §10 adversarial-model section")
	}

	for _, tc := range evasionE2ECases() {
		t.Run(tc.name, func(t *testing.T) {
			gm := buildGroups(t, tc)
			// Fixed order: the alerting session first, then the two
			// alert-free sessions (see runEvasionSessions rank mapping).
			groups := []*outcomeGroup{
				gm[evasion.MustDetect],
				gm[evasion.DocumentedMiss],
				gm[evasion.MustNotFalseAlert],
			}
			results := runEvasionSessions(t, tc, groups)

			det := results[0]
			for _, sid := range groups[0].wantSIDs {
				if !det.ruleSIDs[sid] {
					t.Errorf("must-detect session missed sid %d (alerted: %v)", sid, keys(det.ruleSIDs))
				}
			}
			if tc.secondary && !det.recovered {
				t.Error("Protocol III must-detect session ran without probable-cause recovery")
			}

			miss := results[1]
			if len(miss.ruleSIDs) != 0 || len(miss.secondarySIDs) != 0 {
				t.Errorf("documented-miss session alerted: rules %v secondary %v",
					keys(miss.ruleSIDs), keys(miss.secondarySIDs))
			}
			if len(groups[1].missClasses) == 0 {
				t.Error("documented-miss session carried no cases — the miss contract is vacuous")
			}
			for _, mc := range groups[1].missClasses {
				if !bytes.Contains(design, []byte(mc)) {
					t.Errorf("miss class %q exercised on the wire but not enumerated in DESIGN.md", mc)
				}
			}

			benign := results[2]
			if len(benign.ruleSIDs) != 0 || len(benign.secondarySIDs) != 0 {
				t.Errorf("must-not-false-alert session alerted: rules %v secondary %v",
					keys(benign.ruleSIDs), keys(benign.secondarySIDs))
			}
		})
	}
}

func keys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
