// End-to-end observability suite: a full client -> middlebox -> server
// session with metrics and tracing enabled, scraped over the admin HTTP
// surface. The core claim: the /metrics exposition, Middlebox.Stats(), and
// the alert transcript are three views of the same counters and can never
// disagree.
package blindbox

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// parseExposition reads a Prometheus text page into series -> value,
// keyed by the full series name including labels and histogram suffixes.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparsable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestE2EMetricsMatchTranscript runs Protocol I sessions through a parallel
// middlebox with a shared registry and trace sink, scrapes the admin mux,
// and cross-checks every surface against the others.
func TestE2EMetricsMatchTranscript(t *testing.T) {
	g, err := NewRuleGenerator("ObsRG")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ParseRules("obs-e2e", strings.Join([]string{
		`alert tcp any any -> any any (msg:"kw1"; content:"attack01"; sid:1;)`,
		`alert tcp any any -> any any (msg:"kw2"; content:"exfilkw9"; sid:2;)`,
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}

	reg := NewMetrics()
	sink := &obs.CollectSink{}
	var (
		mu     sync.Mutex
		alerts []Alert
	)
	mb, err := NewMiddlebox(MiddleboxConfig{
		Ruleset:      g.Sign(rs),
		RGPublicKey:  g.PublicKey(),
		DetectShards: 2,
		ShardQueue:   4,
		Metrics:      reg,
		Trace:        sink,
		OnAlert: func(a Alert) {
			mu.Lock()
			alerts = append(alerts, a)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	serverLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer serverLn.Close()
	mbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mbLn.Close()
	epCfg := ConnConfig{Core: DefaultConfig(), RG: RGMaterial{TagKey: g.TagKey()}}
	go func() {
		for {
			raw, err := serverLn.Accept()
			if err != nil {
				return
			}
			go func() {
				conn, err := Server(raw, epCfg)
				if err != nil {
					raw.Close()
					return
				}
				defer conn.Close()
				data, err := io.ReadAll(conn)
				if err != nil {
					return
				}
				conn.Write(data)
				conn.CloseWrite()
			}()
		}
	}()
	go mb.Serve(mbLn, serverLn.Addr().String())

	const sessions = 2
	ccfg := ConnConfig{
		Core: Config{Protocol: ProtocolI, Mode: DelimiterTokens},
		RG:   RGMaterial{TagKey: g.TagKey()},
	}
	for s := 0; s < sessions; s++ {
		conn, err := Dial(mbLn.Addr().String(), ccfg)
		if err != nil {
			t.Fatalf("session %d: %v", s, err)
		}
		payload := conformancePayload(2000+int64(s), 8<<10)
		if _, err := conn.Write(payload); err != nil {
			t.Fatalf("session %d write: %v", s, err)
		}
		if err := conn.CloseWrite(); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadAll(conn); err != nil {
			t.Fatalf("session %d read: %v", s, err)
		}
		conn.Close()
	}
	if err := mb.Close(); err != nil {
		t.Fatal(err)
	}

	// Scrape the same admin mux bbmb -admin serves.
	srv := httptest.NewServer(AdminMux(reg))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	series := parseExposition(t, string(body))

	// Surface 1 vs 2: Stats() and /metrics read the same registry cells.
	stats := mb.Stats()
	mu.Lock()
	transcript := len(alerts)
	bySID := map[int]int{}
	for _, a := range alerts {
		if !a.Secondary && a.Event.Kind == RuleMatch {
			bySID[a.Event.Rule.SID]++
		}
	}
	mu.Unlock()
	if stats.TokensScanned == 0 {
		t.Fatal("no tokens scanned — the session was vacuous")
	}
	checks := map[string]uint64{
		"blindbox_mb_connections_total":     stats.Connections,
		"blindbox_mb_tokens_scanned_total":  stats.TokensScanned,
		"blindbox_mb_bytes_forwarded_total": stats.BytesForwarded,
		"blindbox_mb_alerts_total":          stats.Alerts,
	}
	for name, want := range checks {
		if got, ok := series[name]; !ok || got != float64(want) {
			t.Errorf("%s: scraped %v, Stats() says %d", name, got, want)
		}
	}
	if stats.Connections != sessions {
		t.Errorf("Connections = %d, want %d", stats.Connections, sessions)
	}

	// Surface 3: the alert transcript. Every dispatched event incremented
	// alerts_total; rule matches also incremented their SID's series.
	if int(stats.Alerts) != transcript {
		t.Errorf("Stats().Alerts = %d, transcript has %d", stats.Alerts, transcript)
	}
	if len(bySID) == 0 {
		t.Fatal("no rule matches in the transcript")
	}
	for sid, n := range bySID {
		key := fmt.Sprintf(`blindbox_mb_alerts_by_sid_total{sid="%d"}`, sid)
		if got := series[key]; got != float64(n) {
			t.Errorf("%s: scraped %v, transcript has %d", key, got, n)
		}
	}

	// Pipeline latency and queue-depth series must be present: the scan
	// histogram saw every batch, and both shards registered depth gauges
	// (drained to zero after Close).
	if got := series["blindbox_mb_scan_seconds_count"]; got <= 0 {
		t.Errorf("scan histogram recorded no observations: %v", got)
	}
	if got, ok := series[`blindbox_mb_scan_seconds_bucket{le="+Inf"}`]; !ok || got <= 0 {
		t.Errorf("scan histogram +Inf bucket missing or empty: %v", got)
	}
	for shard := 0; shard < 2; shard++ {
		key := fmt.Sprintf(`blindbox_mb_shard_queue_depth{shard="%d"}`, shard)
		if got, ok := series[key]; !ok || got != 0 {
			t.Errorf("%s: got %v (present %v), want 0 after Close", key, got, ok)
		}
	}

	// The profiling surface rides on the same mux.
	presp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: status %d", presp.StatusCode)
	}

	verifySpanOrdering(t, sink.Spans(), sessions)
}

// verifySpanOrdering pins the trace contract: every flow opens with
// handshake then prep, every scan starts after prep, and scans within one
// (flow, direction) are emitted in start order (per-flow shard pinning
// makes them sequential).
func verifySpanOrdering(t *testing.T, spans []Span, flows int) {
	t.Helper()
	if len(spans) == 0 {
		t.Fatal("trace sink collected no spans")
	}
	type flowView struct {
		handshake, prep *Span
		scans           map[string][]Span
		forwards        int
	}
	byFlow := map[uint64]*flowView{}
	for i := range spans {
		sp := spans[i]
		fv := byFlow[sp.Flow]
		if fv == nil {
			fv = &flowView{scans: map[string][]Span{}}
			byFlow[sp.Flow] = fv
		}
		switch sp.Name {
		case obs.SpanHandshake:
			fv.handshake = &spans[i]
		case obs.SpanPrep:
			fv.prep = &spans[i]
		case obs.SpanScan:
			fv.scans[sp.Dir] = append(fv.scans[sp.Dir], sp)
		case obs.SpanForward:
			fv.forwards++
		}
	}
	if len(byFlow) != flows {
		t.Fatalf("spans cover %d flows, want %d", len(byFlow), flows)
	}
	for id, fv := range byFlow {
		if fv.handshake == nil || fv.prep == nil {
			t.Fatalf("flow %d: missing handshake/prep span", id)
		}
		if fv.handshake.Start > fv.prep.Start {
			t.Errorf("flow %d: prep started before handshake", id)
		}
		if fv.forwards != 2 {
			t.Errorf("flow %d: %d forward spans, want one per direction", id, fv.forwards)
		}
		if len(fv.scans) == 0 {
			t.Errorf("flow %d: no scan spans", id)
		}
		for dir, ss := range fv.scans {
			for i, sp := range ss {
				if sp.Start < fv.prep.Start {
					t.Errorf("flow %d %s: scan %d started before prep", id, dir, i)
				}
				if sp.Shard == nil || *sp.Shard < 0 {
					t.Errorf("flow %d %s: scan %d ran inline or unsharded, want a shard in parallel mode", id, dir, i)
				}
				if i > 0 && sp.Start < ss[i-1].Start {
					t.Errorf("flow %d %s: scan %d out of order (%d < %d)",
						id, dir, i, sp.Start, ss[i-1].Start)
				}
			}
		}
	}
}

// TestMiddleboxConnErrors pins the satellite fix: a connection the
// middlebox cannot proxy (upstream dial failure) is counted in ConnErrors
// instead of being silently swallowed.
func TestMiddleboxConnErrors(t *testing.T) {
	g, err := NewRuleGenerator("ErrRG")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ParseRules("err", `alert tcp any any -> any any (msg:"kw"; content:"attack01"; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := NewMiddlebox(MiddleboxConfig{Ruleset: g.Sign(rs), RGPublicKey: g.PublicKey()})
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Close()

	mbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mbLn.Close()
	// A dead upstream: bind a port, then close it before the middlebox dials.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	go mb.Serve(mbLn, deadAddr)

	ccfg := ConnConfig{Core: DefaultConfig(), RG: RGMaterial{TagKey: g.TagKey()}}
	if _, err := Dial(mbLn.Addr().String(), ccfg); err == nil {
		t.Fatal("Dial succeeded through a middlebox with a dead upstream")
	}
	deadline := time.Now().Add(5 * time.Second)
	for mb.Stats().ConnErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("ConnErrors stayed 0 after a failed upstream dial: %+v", mb.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
