// End-to-end conformance suite: full client -> middlebox -> server sessions
// over all three protocols, run once through the sequential pipeline and
// once through the parallel one (sharded detection pool + parallel sender
// encryption). Detection must be equivalent — same alerts, same order
// within each connection direction — on the same seeded corpora.
package blindbox

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/detect"
	"repro/internal/middlebox"
)

// canonAlert is an Alert reduced to its pipeline-independent fields: the
// recovered key value is excluded (session keys differ per run), but
// whether a key was recovered is kept.
type canonAlert struct {
	Secondary bool
	SIDs      string
	Kind      detect.EventKind
	SID       int
	KwIdx     int
	Offset    int
	HasKey    bool
}

func canonicalize(a Alert) canonAlert {
	c := canonAlert{Secondary: a.Secondary}
	if a.Secondary {
		c.SIDs = fmt.Sprint(a.SecondarySIDs)
		return c
	}
	c.Kind = a.Event.Kind
	if a.Event.Rule != nil {
		c.SID = a.Event.Rule.SID
	}
	c.KwIdx = a.Event.KeywordIndex
	c.Offset = a.Event.Offset
	c.HasKey = a.Event.HasSSLKey
	return c
}

// dirAlerts groups one session's canonical alerts by direction: alerts are
// ordered within a direction, unordered across directions.
type dirAlerts map[middlebox.Direction][]canonAlert

type conformanceCase struct {
	name      string
	cfg       Config
	rulesText string
	secondary bool
}

func conformanceCases() []conformanceCase {
	single := strings.Join([]string{
		`alert tcp any any -> any any (msg:"kw1"; content:"attack01"; sid:1;)`,
		`alert tcp any any -> any any (msg:"kw2"; content:"exfilkw9"; sid:2;)`,
	}, "\n")
	multi := single + "\n" +
		`alert tcp any any -> any any (msg:"multi"; content:"evilhdrX"; content:"attack01"; sid:3;)`
	ids := multi + "\n" +
		`alert tcp any any -> any any (msg:"pc"; content:"attack01"; pcre:"/attack01=[0-9]+/"; sid:4;)`
	return []conformanceCase{
		{"protocolI-delimiter", Config{Protocol: ProtocolI, Mode: DelimiterTokens}, single, false},
		{"protocolII-delimiter", Config{Protocol: ProtocolII, Mode: DelimiterTokens}, multi, false},
		{"protocolIII-window", Config{Protocol: ProtocolIII, Mode: WindowTokens}, ids, true},
	}
}

// conformancePayload builds one seeded traffic sample with the suite's
// attack keywords planted at delimiter boundaries.
func conformancePayload(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	base := corpus.SynthesizeText(rng, n)
	kws := []string{"attack01", "exfilkw9", "evilhdrX", "attack01=777"}
	var buf bytes.Buffer
	chunk := len(base) / (len(kws) + 1)
	for i, kw := range kws {
		buf.Write(base[i*chunk : (i+1)*chunk])
		buf.WriteString(" " + kw + " ")
	}
	buf.Write(base[(len(kws))*chunk:])
	return buf.Bytes()
}

// runConformance drives `sessions` sequential client sessions through one
// middlebox and returns each session's per-direction alert sequences. The
// parallel variant turns on every concurrency feature this PR adds; the
// sequential variant turns them all off.
func runConformance(t *testing.T, tc conformanceCase, sequential bool, sessions int) []dirAlerts {
	t.Helper()
	g, err := NewRuleGenerator("ConformanceRG")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ParseRules("e2e", tc.rulesText)
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu     sync.Mutex
		alerts []Alert
	)
	mbCfg := MiddleboxConfig{
		Ruleset:     g.Sign(rs),
		RGPublicKey: g.PublicKey(),
		Secondary:   tc.secondary,
		Sequential:  sequential,
		OnAlert: func(a Alert) {
			mu.Lock()
			alerts = append(alerts, a)
			mu.Unlock()
		},
	}
	if !sequential {
		mbCfg.DetectShards = 4
		mbCfg.ShardQueue = 8 // small queue: exercise back-pressure
	}
	mb, err := NewMiddlebox(mbCfg)
	if err != nil {
		t.Fatal(err)
	}

	serverLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer serverLn.Close()
	mbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mbLn.Close()
	epCfg := ConnConfig{Core: DefaultConfig(), RG: RGMaterial{TagKey: g.TagKey()}}
	go func() {
		for {
			raw, err := serverLn.Accept()
			if err != nil {
				return
			}
			go func() {
				conn, err := Server(raw, epCfg)
				if err != nil {
					raw.Close()
					return
				}
				data, err := io.ReadAll(conn)
				if err != nil {
					conn.Close()
					return
				}
				conn.Write(data)
				conn.CloseWrite()
				conn.Close()
			}()
		}
	}()
	go mb.Serve(mbLn, serverLn.Addr().String())

	for s := 0; s < sessions; s++ {
		ccfg := ConnConfig{Core: tc.cfg, RG: RGMaterial{TagKey: g.TagKey()}}
		if !sequential {
			ccfg.EncryptWorkers = 3
		}
		conn, err := Dial(mbLn.Addr().String(), ccfg)
		if err != nil {
			t.Fatalf("session %d: %v", s, err)
		}
		payload := conformancePayload(1000+int64(s), 8<<10)
		for off := 0; off < len(payload); off += 3000 {
			end := off + 3000
			if end > len(payload) {
				end = len(payload)
			}
			if _, err := conn.Write(payload[off:end]); err != nil {
				t.Fatalf("session %d write: %v", s, err)
			}
		}
		if err := conn.CloseWrite(); err != nil {
			t.Fatalf("session %d: %v", s, err)
		}
		echoed, err := io.ReadAll(conn)
		if err != nil {
			t.Fatalf("session %d read: %v", s, err)
		}
		if !bytes.Equal(echoed, payload) {
			t.Fatalf("session %d echo mismatch: %d bytes, want %d", s, len(echoed), len(payload))
		}
		conn.Close()
	}
	// Drain queued detection work so the alert log is complete.
	if err := mb.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	byConn := map[uint64]dirAlerts{}
	for _, a := range alerts {
		da, ok := byConn[a.ConnID]
		if !ok {
			da = dirAlerts{}
			byConn[a.ConnID] = da
		}
		da[a.Direction] = append(da[a.Direction], canonicalize(a))
	}
	if len(byConn) != sessions {
		t.Fatalf("%d connections alerted, want %d (every session carries attack keywords)",
			len(byConn), sessions)
	}
	// Sessions ran one after another, so ascending ConnID is session order.
	ids := make([]uint64, 0, len(byConn))
	for id := range byConn {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]dirAlerts, 0, sessions)
	for _, id := range ids {
		out = append(out, byConn[id])
	}
	return out
}

// TestE2EConformanceSequentialVsParallel is the suite's core claim: for
// identical seeded corpora, the parallel pipeline (sharded detection, small
// shard queues, parallel sender encryption) produces exactly the alert
// sequences of the sequential pipeline, per session and direction, on all
// three protocols.
func TestE2EConformanceSequentialVsParallel(t *testing.T) {
	sessions := 3
	if testing.Short() {
		sessions = 2
	}
	for _, tc := range conformanceCases() {
		t.Run(tc.name, func(t *testing.T) {
			seq := runConformance(t, tc, true, sessions)
			par := runConformance(t, tc, false, sessions)
			total := 0
			for s := 0; s < sessions; s++ {
				for _, dir := range []middlebox.Direction{middlebox.ClientToServer, middlebox.ServerToClient} {
					a, b := seq[s][dir], par[s][dir]
					if !reflect.DeepEqual(a, b) {
						t.Fatalf("session %d %s: alert sequences differ\nsequential: %+v\nparallel:   %+v",
							s, dir, a, b)
					}
					total += len(a)
				}
			}
			if total == 0 {
				t.Fatal("no alerts on either pipeline — the conformance check was vacuous")
			}
			if tc.cfg.Protocol == ProtocolIII {
				recovered := false
				for s := 0; s < sessions; s++ {
					for _, as := range seq[s] {
						for _, a := range as {
							if a.HasKey || a.Secondary {
								recovered = true
							}
						}
					}
				}
				if !recovered {
					t.Fatal("Protocol III conformance ran without probable-cause recovery")
				}
			}
		})
	}
}
