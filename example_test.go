package blindbox_test

import (
	"fmt"
	"io"
	"log"
	"net"

	blindbox "repro"
)

// Example demonstrates a complete BlindBox deployment: a rule generator
// signs a ruleset, a middlebox inspects encrypted traffic for it, and a
// client/server pair speaks BlindBox HTTPS through the middlebox. The
// middlebox detects the attack keyword without ever holding the session
// key.
func Example() {
	// Rule generator (RG).
	rg, err := blindbox.NewRuleGenerator("ExampleRG")
	if err != nil {
		log.Fatal(err)
	}
	rs, err := blindbox.ParseRules("example",
		`alert tcp any any -> any any (msg:"demo keyword"; content:"exploit-kw-77"; sid:1;)`)
	if err != nil {
		log.Fatal(err)
	}

	// Middlebox.
	alerts := make(chan blindbox.Alert, 8)
	mb, err := blindbox.NewMiddlebox(blindbox.MiddleboxConfig{
		Ruleset:     rg.Sign(rs),
		RGPublicKey: rg.PublicKey(),
		OnAlert:     func(a blindbox.Alert) { alerts <- a },
	})
	if err != nil {
		log.Fatal(err)
	}
	serverLn, _ := net.Listen("tcp", "127.0.0.1:0")
	mbLn, _ := net.Listen("tcp", "127.0.0.1:0")
	defer serverLn.Close()
	defer mbLn.Close()

	cfg := blindbox.ConnConfig{
		Core: blindbox.DefaultConfig(),
		RG:   blindbox.RGMaterial{TagKey: rg.TagKey()},
	}

	// Server: drains each request.
	go func() {
		raw, err := serverLn.Accept()
		if err != nil {
			return
		}
		conn, err := blindbox.Server(raw, cfg)
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(io.Discard, conn)
		conn.Write([]byte("ok"))
		conn.CloseWrite()
	}()
	go mb.Serve(mbLn, serverLn.Addr().String())

	// Client.
	conn, err := blindbox.Dial(mbLn.Addr().String(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("GET /?q=exploit-kw-77 HTTP/1.1\r\n\r\n"))
	conn.CloseWrite()
	io.ReadAll(conn)

	for a := range alerts {
		if a.Event.Kind == blindbox.RuleMatch {
			fmt.Printf("alert: rule %d (%s)\n", a.Event.Rule.SID, a.Event.Rule.Msg)
			break
		}
	}
	// Output:
	// alert: rule 1 (demo keyword)
}
