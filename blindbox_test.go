package blindbox_test

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	blindbox "repro"
)

// TestPublicAPIRoundTrip exercises the complete public surface the way the
// package documentation advertises it: rule generator, middlebox, server,
// client, alert delivery.
func TestPublicAPIRoundTrip(t *testing.T) {
	rg, err := blindbox.NewRuleGenerator("APITestRG")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := blindbox.ParseRules("api", `alert tcp any any -> any any (msg:"kw"; content:"public-api-attack"; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu     sync.Mutex
		alerts []blindbox.Alert
	)
	mb, err := blindbox.NewMiddlebox(blindbox.MiddleboxConfig{
		Ruleset:     rg.Sign(rs),
		RGPublicKey: rg.PublicKey(),
		OnAlert: func(a blindbox.Alert) {
			mu.Lock()
			alerts = append(alerts, a)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	serverLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer serverLn.Close()
	mbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mbLn.Close()

	cfg := blindbox.ConnConfig{
		Core: blindbox.DefaultConfig(),
		RG:   blindbox.RGMaterial{TagKey: rg.TagKey()},
	}
	go func() {
		for {
			raw, err := serverLn.Accept()
			if err != nil {
				return
			}
			go func() {
				conn, err := blindbox.Server(raw, cfg)
				if err != nil {
					raw.Close()
					return
				}
				defer conn.Close()
				data, err := io.ReadAll(conn)
				if err != nil {
					return
				}
				conn.Write(data)
				conn.CloseWrite()
			}()
		}
	}()
	go mb.Serve(mbLn, serverLn.Addr().String())

	conn, err := blindbox.Dial(mbLn.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if !conn.MBPresent() {
		t.Fatal("middlebox not detected on path")
	}
	msg := []byte("request with public-api-attack keyword")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	conn.CloseWrite()
	echoed, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if string(echoed) != string(msg) {
		t.Fatalf("echo mismatch: %q", echoed)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		found := false
		for _, a := range alerts {
			if a.Event.Kind == blindbox.RuleMatch && a.Event.Rule.SID == 1 {
				found = true
			}
		}
		mu.Unlock()
		if found {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("rule alert never delivered through the public API")
}

func TestDefaultConfig(t *testing.T) {
	cfg := blindbox.DefaultConfig()
	if cfg.Protocol != blindbox.ProtocolII || cfg.Mode != blindbox.DelimiterTokens {
		t.Fatalf("DefaultConfig = %+v, want Protocol II + delimiter tokens", cfg)
	}
}

func TestParseRuleExported(t *testing.T) {
	r, err := blindbox.ParseRule(`alert tcp any any -> any any (content:"abc"; pcre:"/a.c/"; sid:2;)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Protocol() != 3 {
		t.Fatalf("protocol = %d", r.Protocol())
	}
}
